//! The simulated LAN.
//!
//! Models the paper's Table 4 network: a 100 Mb/s LAN where a message or a
//! (hardware-multicast) broadcast costs 0.07 ms on the wire. The network is
//! a passive shared object — senders compute the delivery instant and
//! schedule the event through their [`Ctx`]; the kernel's incarnation check
//! makes messages to crashed nodes vanish, matching the crash model.
//!
//! Supports unicast, multicast and broadcast, network partitions (messages
//! across a partition are silently dropped), and optional probabilistic
//! fault injection: message loss, message duplication (an extra copy of a
//! delivery is scheduled), and bounded reordering (a delivery is deferred
//! by a random amount within [`NetConfig::reorder_window`], letting later
//! sends overtake it). Each cause keeps its own counter in [`NetStats`] so
//! scenario oracles can account for every perturbed delivery.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use rand::Rng;

use groupsafe_sim::{ActorId, Ctx, SimDuration};

use crate::node::NodeId;

/// Configuration of the simulated LAN.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Wire time per message or broadcast (Table 4: 0.07 ms).
    pub latency: SimDuration,
    /// Additional uniformly-distributed jitter upper bound (0 = none).
    pub jitter: SimDuration,
    /// Probability that any given point-to-point delivery is lost
    /// (0.0 = quasi-reliable channels, the paper's assumption).
    pub loss_probability: f64,
    /// Probability that a delivery is duplicated: an extra copy is
    /// scheduled, spread over [`NetConfig::reorder_window`] past the
    /// original (0.0 = never, the default).
    pub duplicate_probability: f64,
    /// Probability that a delivery is deferred by a uniform extra delay in
    /// `(0, reorder_window]`, so later sends can overtake it (bounded
    /// reordering; 0.0 = strictly FIFO per latency draw, the default).
    pub reorder_probability: f64,
    /// Upper bound of the extra delay used by reordering and by duplicate
    /// copies. Ignored (treated as one latency) when zero.
    pub reorder_window: SimDuration,
    /// Extra wire time charged per *additional* message packed into a
    /// batch frame (see [`Network::send_frame`]): a frame of `k`
    /// messages takes `latency + (k - 1) × frame_unit_cost` on the wire,
    /// so batching amortises the fixed per-transmission cost while still
    /// paying for the bytes it moves. Default: a fixed 7 µs — 10 % of
    /// the *default* 70 µs latency; it does not track `latency`
    /// overrides, so set both when modelling a different network.
    pub frame_unit_cost: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: SimDuration::from_micros(70),
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_window: SimDuration::ZERO,
            frame_unit_cost: SimDuration::from_micros(7),
        }
    }
}

/// CPU time a network operation costs the sending/receiving host
/// (Table 4: 0.07 ms). Charged by callers on their own CPU resource.
pub const NET_CPU: SimDuration = SimDuration::from_micros(70);

/// Delivery counters for the whole network.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Point-to-point deliveries scheduled. A batch frame counts as ONE
    /// delivery per receiver regardless of how many messages it packs.
    pub sent: u64,
    /// Physical wire transmissions: one per unicast attempt, and one per
    /// *distinct receiver domain* per multicast/broadcast — hardware
    /// multicast puts a single frame on a domain's address however many
    /// members listen, so `sent` (receiver-side deliveries) over-counts
    /// the wire by the fan-out factor. Counted whether or not individual
    /// receivers subsequently drop (the sender transmitted either way).
    pub transmissions: u64,
    /// Multicast/broadcast operations (each fans out into `sent` deliveries).
    pub broadcasts: u64,
    /// Batch-frame transmissions (subset of `sent`).
    pub frames: u64,
    /// Application messages carried inside batch frames.
    pub frame_msgs: u64,
    /// Deliveries dropped because sender and receiver were partitioned.
    pub dropped_partition: u64,
    /// Deliveries dropped by probabilistic loss.
    pub dropped_loss: u64,
    /// Extra copies injected by probabilistic duplication (each also
    /// counts in `sent`).
    pub duplicated: u64,
    /// Deliveries deferred by probabilistic reordering.
    pub reordered: u64,
}

/// A message as it arrives at a node: payload plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The sending node.
    pub from: NodeId,
    /// The message body.
    pub msg: M,
}

struct NetworkState {
    config: NetConfig,
    actors: Vec<Option<ActorId>>,
    /// Partition colouring: nodes can talk iff colours are equal.
    colour: Vec<u32>,
    stats: NetStats,
    /// Multicast-domain id per node (all nodes share domain 0 until
    /// [`Network::set_domains`] carves the node space up). In a sharded
    /// system each replica group and its clients form one domain, so
    /// per-group wire traffic can be accounted separately.
    domain: Vec<u32>,
    /// Per-domain delivery counters, indexed by domain id (sends are
    /// attributed to the *sender's* domain).
    domain_stats: Vec<NetStats>,
}

impl NetworkState {
    fn charge(&mut self, from: NodeId, f: impl Fn(&mut NetStats)) {
        f(&mut self.stats);
        let d = self.domain.get(from.index()).copied().unwrap_or(0) as usize;
        if let Some(s) = self.domain_stats.get_mut(d) {
            f(s);
        }
    }
}

/// Cloneable handle to the shared network state.
#[derive(Clone)]
pub struct Network {
    inner: Rc<RefCell<NetworkState>>,
}

impl Network {
    /// Create a network with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        Network {
            inner: Rc::new(RefCell::new(NetworkState {
                config,
                actors: Vec::new(),
                colour: Vec::new(),
                stats: NetStats::default(),
                domain: Vec::new(),
                domain_stats: vec![NetStats::default()],
            })),
        }
    }

    /// Create a network with the paper's Table 4 parameters.
    pub fn paper_default() -> Self {
        Network::new(NetConfig::default())
    }

    /// Attach `actor` as the implementation of `node`. Nodes must be
    /// registered densely starting at 0.
    pub fn register(&self, node: NodeId, actor: ActorId) {
        let mut s = self.inner.borrow_mut();
        let idx = node.index();
        if s.actors.len() <= idx {
            s.actors.resize(idx + 1, None);
            s.colour.resize(idx + 1, 0);
            s.domain.resize(idx + 1, 0);
        }
        s.actors[idx] = Some(actor);
    }

    /// Carve the node space into multicast domains: `groups[d]` lists the
    /// nodes of domain `d`; unlisted nodes stay in domain 0. Wire traffic
    /// is attributed to the *sender's* domain in
    /// [`Network::domain_stats`]. Domains are an accounting and targeting
    /// overlay — they do not restrict connectivity (partitions do).
    pub fn set_domains(&self, groups: &[Vec<NodeId>]) {
        let mut s = self.inner.borrow_mut();
        for d in &mut s.domain {
            *d = 0;
        }
        for (d, group) in groups.iter().enumerate() {
            for node in group {
                let idx = node.index();
                if idx >= s.domain.len() {
                    s.domain.resize(idx + 1, 0);
                    s.colour.resize(idx + 1, 0);
                    s.actors.resize(idx + 1, None);
                }
                s.domain[idx] = d as u32;
            }
        }
        s.domain_stats = vec![NetStats::default(); groups.len().max(1)];
    }

    /// Number of multicast domains (1 until [`Network::set_domains`]).
    pub fn n_domains(&self) -> usize {
        self.inner.borrow().domain_stats.len()
    }

    /// The nodes of domain `d`.
    pub fn domain_members(&self, d: u32) -> Vec<NodeId> {
        let s = self.inner.borrow();
        (0..s.domain.len() as u32)
            .map(NodeId)
            .filter(|n| s.domain[n.index()] == d)
            .collect()
    }

    /// The domain `node` belongs to.
    pub fn domain_of(&self, node: NodeId) -> u32 {
        self.inner
            .borrow()
            .domain
            .get(node.index())
            .copied()
            .unwrap_or(0)
    }

    /// Delivery counters attributed to senders of domain `d`.
    pub fn domain_stats(&self, d: u32) -> NetStats {
        self.inner
            .borrow()
            .domain_stats
            .get(d as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Multicast `msg` to every node of domain `d` (including the sender
    /// when it belongs to the domain). One hardware multicast on the
    /// domain's address: one broadcast counter tick.
    pub fn multicast_domain<M: Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        d: u32,
        msg: M,
    ) {
        let targets = self.domain_members(d);
        self.multicast(ctx, from, &targets, msg);
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().actors.len()
    }

    /// All registered node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        let s = self.inner.borrow();
        (0..s.actors.len() as u32).map(NodeId).collect()
    }

    /// The actor implementing `node`.
    ///
    /// # Panics
    /// Panics if `node` was never registered.
    pub fn actor_of(&self, node: NodeId) -> ActorId {
        self.inner.borrow().actors[node.index()].expect("unregistered node")
    }

    fn delivery_delay(&self, ctx: &mut Ctx<'_>) -> SimDuration {
        let (latency, jitter) = {
            let s = self.inner.borrow();
            (s.config.latency, s.config.jitter)
        };
        if jitter.is_zero() {
            latency
        } else {
            let extra = ctx.rng().random_range(0..=jitter.as_nanos());
            latency + SimDuration::from_nanos(extra)
        }
    }

    fn should_drop(&self, ctx: &mut Ctx<'_>, from: NodeId, to: NodeId) -> bool {
        let loss = {
            let s = self.inner.borrow();
            if s.colour[from.index()] != s.colour[to.index()] {
                drop(s);
                self.inner
                    .borrow_mut()
                    .charge(from, |st| st.dropped_partition += 1);
                return true;
            }
            s.config.loss_probability
        };
        if loss > 0.0 && ctx.rng().random_bool(loss) {
            self.inner
                .borrow_mut()
                .charge(from, |st| st.dropped_loss += 1);
            return true;
        }
        false
    }

    /// Extra deferral inside the reorder window: a uniform draw in
    /// `(0, reorder_window]`, or one base latency when the window is zero.
    /// Only called once the feature's coin came up, so disabled runs never
    /// touch the RNG here (their event streams stay bit-for-bit).
    fn window_extra(&self, ctx: &mut Ctx<'_>) -> SimDuration {
        let (window, latency) = {
            let s = self.inner.borrow();
            (s.config.reorder_window, s.config.latency)
        };
        if window.is_zero() {
            latency
        } else {
            SimDuration::from_nanos(ctx.rng().random_range(1..=window.as_nanos()))
        }
    }

    /// Apply probabilistic reordering to a computed delay and account it.
    fn maybe_defer(&self, ctx: &mut Ctx<'_>, from: NodeId, delay: SimDuration) -> SimDuration {
        let p = self.inner.borrow().config.reorder_probability;
        if p > 0.0 && ctx.rng().random_bool(p) {
            self.inner.borrow_mut().charge(from, |st| st.reordered += 1);
            delay + self.window_extra(ctx)
        } else {
            delay
        }
    }

    /// Schedule a probabilistic duplicate of a delivery, deferred within
    /// the reorder window past the original's delay.
    fn maybe_duplicate<M: Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        actor: ActorId,
        from: NodeId,
        delay: SimDuration,
        msg: &M,
    ) {
        let p = self.inner.borrow().config.duplicate_probability;
        if p > 0.0 && ctx.rng().random_bool(p) {
            let extra = self.window_extra(ctx);
            self.inner.borrow_mut().charge(from, |st| {
                st.sent += 1;
                st.duplicated += 1;
            });
            ctx.send(
                actor,
                delay + extra,
                Incoming {
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Account the wire transmissions of a multicast: one per distinct
    /// receiver domain among `targets` (hardware multicast reaches every
    /// listener of a domain's address with a single frame on the wire).
    fn charge_multicast_transmissions(&self, from: NodeId, targets: &[NodeId]) {
        let mut s = self.inner.borrow_mut();
        let mut domains: Vec<u32> = targets
            .iter()
            .map(|t| s.domain.get(t.index()).copied().unwrap_or(0))
            .collect();
        domains.sort_unstable();
        domains.dedup();
        let n = domains.len() as u64;
        s.charge(from, |st| st.transmissions += n);
    }

    /// Schedule one receiver-side delivery (shared by the unicast and
    /// multicast entry points, which differ only in how they account the
    /// wire). `frame`: `Some(k)` for a k-message batch frame, whose wire
    /// time grows with its size: `latency + (k - 1) × frame_unit_cost`.
    fn deliver<M: Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        to: NodeId,
        msg: M,
        frame: Option<u64>,
    ) {
        if self.should_drop(ctx, from, to) {
            return;
        }
        let base = self.delivery_delay(ctx);
        let delay = match frame {
            Some(k) => {
                let unit = self.inner.borrow().config.frame_unit_cost;
                base + unit * k.saturating_sub(1)
            }
            None => base,
        };
        let delay = self.maybe_defer(ctx, from, delay);
        let actor = self.actor_of(to);
        self.inner.borrow_mut().charge(from, |st| {
            st.sent += 1;
            if let Some(k) = frame {
                st.frames += 1;
                st.frame_msgs += k;
            }
        });
        self.maybe_duplicate(ctx, actor, from, delay, &msg);
        ctx.send(actor, delay, Incoming { from, msg });
    }

    /// Send `msg` from `from` to `to`. The receiver gets an
    /// [`Incoming<M>`] event after the wire latency. Messages to
    /// partitioned or crashed nodes are lost.
    pub fn send<M: Any + Clone>(&self, ctx: &mut Ctx<'_>, from: NodeId, to: NodeId, msg: M) {
        self.inner
            .borrow_mut()
            .charge(from, |st| st.transmissions += 1);
        self.deliver(ctx, from, to, msg, None);
    }

    /// Send `msg` — a batch frame packing `msgs_in_frame` application
    /// messages — from `from` to `to`. The frame is accounted as ONE
    /// transmission whose wire time grows with its size: `latency +
    /// (msgs_in_frame - 1) × frame_unit_cost` (plus jitter, if any).
    pub fn send_frame<M: Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        to: NodeId,
        msg: M,
        msgs_in_frame: u64,
    ) {
        self.inner
            .borrow_mut()
            .charge(from, |st| st.transmissions += 1);
        self.deliver(ctx, from, to, msg, Some(msgs_in_frame));
    }

    /// Multicast a batch frame to every node in `targets` (one delivery
    /// per target, one broadcast counter tick, one wire transmission per
    /// distinct receiver domain). The last target receives the original
    /// `msg` by move, so an `n`-way fan-out pays `n - 1` clones — and a
    /// refcounted payload (e.g. `Rc<GroupMsg>`) pays none at all.
    pub fn multicast_frame<M: Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        targets: &[NodeId],
        msg: M,
        msgs_in_frame: u64,
    ) {
        self.inner
            .borrow_mut()
            .charge(from, |st| st.broadcasts += 1);
        self.charge_multicast_transmissions(from, targets);
        if let Some((&last, rest)) = targets.split_last() {
            for &t in rest {
                self.deliver(ctx, from, t, msg.clone(), Some(msgs_in_frame));
            }
            self.deliver(ctx, from, last, msg, Some(msgs_in_frame));
        }
    }

    /// Multicast `msg` from `from` to every node in `targets` (the sender
    /// may include itself; self-delivery also pays the wire latency, which
    /// models the loopback through the network stack). Accounted as one
    /// wire transmission per distinct receiver domain; the last target
    /// receives `msg` by move (see [`Network::multicast_frame`]).
    pub fn multicast<M: Any + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        targets: &[NodeId],
        msg: M,
    ) {
        self.inner
            .borrow_mut()
            .charge(from, |st| st.broadcasts += 1);
        self.charge_multicast_transmissions(from, targets);
        if let Some((&last, rest)) = targets.split_last() {
            for &t in rest {
                self.deliver(ctx, from, t, msg.clone(), None);
            }
            self.deliver(ctx, from, last, msg, None);
        }
    }

    /// Broadcast `msg` from `from` to every registered node (including the
    /// sender). One hardware multicast: one broadcast counter tick.
    pub fn broadcast<M: Any + Clone>(&self, ctx: &mut Ctx<'_>, from: NodeId, msg: M) {
        let targets = self.nodes();
        self.multicast(ctx, from, &targets, msg);
    }

    /// Split the network: nodes in the same group keep talking, messages
    /// across groups are dropped. Nodes absent from every group form an
    /// implicit final group.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        let mut s = self.inner.borrow_mut();
        let spare = groups.len() as u32 + 1;
        for c in &mut s.colour {
            *c = spare;
        }
        for (i, group) in groups.iter().enumerate() {
            for node in group.iter() {
                s.colour[node.index()] = i as u32 + 1;
            }
        }
    }

    /// Heal all partitions.
    pub fn heal(&self) {
        let mut s = self.inner.borrow_mut();
        for c in &mut s.colour {
            *c = 0;
        }
    }

    /// True if `a` and `b` are currently in the same partition component.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        let s = self.inner.borrow();
        s.colour[a.index()] == s.colour[b.index()]
    }

    /// Set the probabilistic per-delivery loss rate.
    pub fn set_loss_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.borrow_mut().config.loss_probability = p;
    }

    /// Set the probabilistic per-delivery duplication rate.
    pub fn set_duplicate_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.borrow_mut().config.duplicate_probability = p;
    }

    /// Set the probabilistic reordering rate and the window bounding both
    /// reorder deferrals and duplicate-copy spread.
    pub fn set_reorder(&self, p: f64, window: SimDuration) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let mut s = self.inner.borrow_mut();
        s.config.reorder_probability = p;
        s.config.reorder_window = window;
    }

    /// Snapshot of delivery counters.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsafe_sim::{Actor, Engine, Payload, SimTime};

    struct Receiver {
        node: NodeId,
        net: Network,
        got: Vec<(NodeId, u32)>,
        echo: bool,
    }

    impl Actor for Receiver {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            let inc = payload
                .downcast::<Incoming<u32>>()
                .expect("only u32 messages in this test");
            self.got.push((inc.from, inc.msg));
            if self.echo && inc.msg < 3 {
                let net = self.net.clone();
                net.send(ctx, self.node, inc.from, inc.msg + 1);
            }
        }
        fn name(&self) -> &str {
            "receiver"
        }
    }

    fn build(n: u32, echo: bool) -> (Engine, Network, Vec<ActorId>) {
        let mut eng = Engine::new(99);
        let net = Network::paper_default();
        let mut ids = Vec::new();
        for i in 0..n {
            let id = eng.add_actor(Box::new(Receiver {
                node: NodeId(i),
                net: net.clone(),
                got: Vec::new(),
                echo,
            }));
            net.register(NodeId(i), id);
            ids.push(id);
        }
        (eng, net, ids)
    }

    /// A bootstrap payload that makes node 0 broadcast `val`.
    struct Kick;
    struct Kicker {
        net: Network,
        val: u32,
    }
    impl Actor for Kicker {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.downcast::<Kick>().is_ok() {
                let net = self.net.clone();
                net.broadcast(ctx, NodeId(0), self.val);
            }
        }
    }

    #[test]
    fn echo_chain_pays_latency_per_hop() {
        let (mut eng, net, ids) = build(2, true);
        // Broadcast 0; echoes bounce until the counter reaches 3, so the
        // longest chain is broadcast + 3 echo hops = 4 × 70 µs.
        let kicker = eng.add_actor(Box::new(Kicker {
            net: net.clone(),
            val: 0,
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        let r1: &Receiver = eng.actor(ids[1]);
        assert_eq!(r1.got.first(), Some(&(NodeId(0), 0)));
        assert_eq!(eng.now(), SimTime::from_micros(70 * 4));
        assert_eq!(net.stats().broadcasts, 1);
    }

    #[test]
    fn broadcast_reaches_everyone_including_sender() {
        let (mut eng, net, ids) = build(3, false);
        let kicker = eng.add_actor(Box::new(Kicker {
            net: net.clone(),
            val: 7,
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        for id in &ids {
            let r: &Receiver = eng.actor(*id);
            assert_eq!(r.got, vec![(NodeId(0), 7)]);
        }
        assert_eq!(net.stats().sent, 3);
    }

    #[test]
    fn partition_drops_cross_messages() {
        let (mut eng, net, ids) = build(3, false);
        net.partition(&[&[NodeId(0), NodeId(1)], &[NodeId(2)]]);
        assert!(net.connected(NodeId(0), NodeId(1)));
        assert!(!net.connected(NodeId(0), NodeId(2)));
        let kicker = eng.add_actor(Box::new(Kicker {
            net: net.clone(),
            val: 7,
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        let r1: &Receiver = eng.actor(ids[1]);
        let r2: &Receiver = eng.actor(ids[2]);
        assert_eq!(r1.got.len(), 1);
        assert_eq!(r2.got.len(), 0);
        assert_eq!(net.stats().dropped_partition, 1);
        net.heal();
        assert!(net.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn crashed_node_loses_messages() {
        let (mut eng, net, ids) = build(2, false);
        let kicker = eng.add_actor(Box::new(Kicker {
            net: net.clone(),
            val: 7,
        }));
        eng.schedule_crash(SimTime::ZERO, ids[1]);
        eng.schedule(SimTime::from_micros(1), kicker, Kick);
        eng.schedule_recover(SimTime::from_millis(1), ids[1]);
        eng.run_to_completion();
        // The message was in flight while node 1 was down: lost, and not
        // replayed after recovery.
        let r1: &Receiver = eng.actor(ids[1]);
        assert!(r1.got.is_empty());
    }

    #[test]
    fn probabilistic_loss_drops_some() {
        let (mut eng, net, ids) = build(2, false);
        net.set_loss_probability(0.5);
        let kicker = eng.add_actor(Box::new(Kicker {
            net: net.clone(),
            val: 7,
        }));
        for i in 0..200 {
            eng.schedule(SimTime::from_micros(i * 10), kicker, Kick);
        }
        eng.run_to_completion();
        let r1: &Receiver = eng.actor(ids[1]);
        let delivered = r1.got.len();
        assert!(
            delivered > 50 && delivered < 150,
            "delivered {delivered}/200"
        );
        assert_eq!(
            net.stats().dropped_loss as usize + net.stats().sent as usize,
            400
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_loss_probability_rejected() {
        let net = Network::paper_default();
        net.set_loss_probability(1.5);
    }

    /// A frame carrying `k` messages is one transmission with
    /// size-proportional latency, not `k` transmissions.
    struct FrameKicker {
        net: Network,
        msgs: u64,
    }
    impl Actor for FrameKicker {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.downcast::<Kick>().is_ok() {
                let net = self.net.clone();
                net.send_frame(ctx, NodeId(0), NodeId(1), 5u32, self.msgs);
            }
        }
    }

    #[test]
    fn batch_frame_is_one_sized_transmission() {
        let (mut eng, net, ids) = build(2, false);
        let kicker = eng.add_actor(Box::new(FrameKicker {
            net: net.clone(),
            msgs: 11,
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        let r1: &Receiver = eng.actor(ids[1]);
        assert_eq!(r1.got, vec![(NodeId(0), 5)]);
        // 70 µs base + 10 extra messages × 7 µs.
        assert_eq!(eng.now(), SimTime::from_micros(70 + 10 * 7));
        let stats = net.stats();
        assert_eq!(stats.sent, 1, "one transmission");
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.frame_msgs, 11);
    }

    /// Wire accounting: a multicast is one physical transmission per
    /// distinct receiver domain (hardware multicast), not one per
    /// receiver — while `sent` keeps counting per-receiver deliveries.
    struct WireKicker {
        net: Network,
        targets: Vec<NodeId>,
    }
    impl Actor for WireKicker {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.downcast::<Kick>().is_ok() {
                let net = self.net.clone();
                net.multicast(ctx, NodeId(0), &self.targets, 4u32);
            }
        }
    }

    #[test]
    fn multicast_counts_one_transmission_per_domain() {
        // All three receivers share domain 0 (no set_domains call): the
        // fan-out is 3 deliveries but a single frame on the wire.
        let (mut eng, net, ids) = build(3, false);
        let kicker = eng.add_actor(Box::new(WireKicker {
            net: net.clone(),
            targets: vec![NodeId(0), NodeId(1), NodeId(2)],
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        for id in &ids {
            let r: &Receiver = eng.actor(*id);
            assert_eq!(r.got, vec![(NodeId(0), 4)]);
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 3, "one delivery per receiver");
        assert_eq!(stats.transmissions, 1, "one frame on the shared wire");

        // Receivers split across two domains: two hardware multicasts.
        let (mut eng, net, _ids) = build(4, false);
        net.set_domains(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        let kicker = eng.add_actor(Box::new(WireKicker {
            net: net.clone(),
            targets: vec![NodeId(1), NodeId(2), NodeId(3)],
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        let stats = net.stats();
        assert_eq!(stats.sent, 3);
        assert_eq!(stats.transmissions, 2, "one per receiver domain");

        // Unicast sends stay one transmission each.
        let (mut eng, net, _ids) = build(2, true);
        let kicker = eng.add_actor(Box::new(Kicker {
            net: net.clone(),
            val: 0,
        }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        let stats = net.stats();
        // Broadcast (1 transmission, 2 deliveries); each delivery of a
        // value < 3 echoes a unicast, so 6 echo sends follow.
        assert_eq!(stats.sent, 8);
        assert_eq!(stats.transmissions, 7);
    }

    /// A domain multicast reaches exactly the domain's members, and the
    /// traffic is attributed to the sender's domain.
    struct DomainKicker {
        net: Network,
    }
    impl Actor for DomainKicker {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.downcast::<Kick>().is_ok() {
                let net = self.net.clone();
                net.multicast_domain(ctx, NodeId(0), 0, 9u32);
            }
        }
    }

    #[test]
    fn multicast_domains_target_and_account_per_group() {
        let (mut eng, net, ids) = build(4, false);
        net.set_domains(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        assert_eq!(net.n_domains(), 2);
        assert_eq!(net.domain_of(NodeId(1)), 0);
        assert_eq!(net.domain_of(NodeId(3)), 1);
        assert_eq!(net.domain_members(1), vec![NodeId(2), NodeId(3)]);
        let kicker = eng.add_actor(Box::new(DomainKicker { net: net.clone() }));
        eng.schedule(SimTime::ZERO, kicker, Kick);
        eng.run_to_completion();
        // Only domain 0's members received the multicast.
        let r1: &Receiver = eng.actor(ids[1]);
        let r2: &Receiver = eng.actor(ids[2]);
        assert_eq!(r1.got, vec![(NodeId(0), 9)]);
        assert!(r2.got.is_empty(), "other domains untouched");
        // And the wire traffic is attributed to the sender's domain.
        assert_eq!(net.domain_stats(0).sent, 2);
        assert_eq!(net.domain_stats(0).broadcasts, 1);
        assert_eq!(net.domain_stats(1).sent, 0);
    }
}
