//! Message duplication and bounded reordering: the fault-injection
//! primitives the scenario engine's bursts drive, with per-cause
//! counters mirroring the partition/loss accounting.

use groupsafe_net::{Incoming, NetConfig, Network, NodeId};
use groupsafe_sim::{Actor, ActorId, Ctx, Engine, Payload, SimDuration, SimTime};

struct Receiver {
    got: Vec<(SimTime, u32)>,
}

impl Actor for Receiver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let inc = payload.downcast::<Incoming<u32>>().expect("u32 messages");
        self.got.push((ctx.now(), inc.msg));
    }
}

/// A driver payload telling node 0 to send `val` to node 1.
struct SendNow(u32);
struct Sender {
    net: Network,
}
impl Actor for Sender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let SendNow(val) = *payload.downcast::<SendNow>().expect("SendNow");
        let net = self.net.clone();
        net.send(ctx, NodeId(0), NodeId(1), val);
    }
}

fn build(config: NetConfig) -> (Engine, Network, ActorId, ActorId) {
    let mut eng = Engine::new(12345);
    let net = Network::new(config);
    let sender = eng.add_actor(Box::new(Sender { net: net.clone() }));
    net.register(NodeId(0), sender);
    let receiver = eng.add_actor(Box::new(Receiver { got: Vec::new() }));
    net.register(NodeId(1), receiver);
    (eng, net, sender, receiver)
}

#[test]
fn duplication_delivers_extra_copies_and_counts_them() {
    let (mut eng, net, sender, receiver) = build(NetConfig {
        duplicate_probability: 1.0,
        ..NetConfig::default()
    });
    for i in 0..10 {
        eng.schedule(SimTime::from_millis(i), sender, SendNow(i as u32));
    }
    eng.run_to_completion();
    let r: &Receiver = eng.actor(receiver);
    assert_eq!(r.got.len(), 20, "every delivery must arrive twice");
    for i in 0..10u32 {
        assert_eq!(r.got.iter().filter(|(_, v)| *v == i).count(), 2);
    }
    let stats = net.stats();
    assert_eq!(stats.duplicated, 10);
    assert_eq!(stats.sent, 20, "copies count as deliveries");
    assert_eq!(stats.reordered, 0);
}

#[test]
fn reordering_defers_within_the_window() {
    // Reorder every delivery by up to 10 ms while sends are 1 ms apart:
    // arrival order must differ from send order, and every deferral stays
    // inside one window of its original delivery instant.
    let (mut eng, net, sender, receiver) = build(NetConfig {
        reorder_probability: 1.0,
        reorder_window: SimDuration::from_millis(10),
        ..NetConfig::default()
    });
    let n = 20u64;
    for i in 0..n {
        eng.schedule(SimTime::from_millis(i), sender, SendNow(i as u32));
    }
    eng.run_to_completion();
    let r: &Receiver = eng.actor(receiver);
    assert_eq!(r.got.len(), n as usize, "reordering never loses a message");
    let arrived: Vec<u32> = r.got.iter().map(|&(_, v)| v).collect();
    let mut in_order = arrived.clone();
    in_order.sort_unstable();
    assert_ne!(
        arrived, in_order,
        "some pair must have swapped: {arrived:?}"
    );
    for &(at, v) in &r.got {
        let sent = SimTime::from_millis(v as u64);
        let bound = sent + NetConfig::default().latency + SimDuration::from_millis(10);
        assert!(
            at <= bound,
            "msg {v} arrived at {at}, past its window {bound}"
        );
        assert!(at > sent, "msg {v} cannot arrive before it was sent");
    }
    assert_eq!(net.stats().reordered, n);
    assert_eq!(net.stats().duplicated, 0);
}

#[test]
fn partitioned_deliveries_are_not_duplicated() {
    let (mut eng, net, sender, receiver) = build(NetConfig {
        duplicate_probability: 1.0,
        ..NetConfig::default()
    });
    net.partition(&[&[NodeId(0)], &[NodeId(1)]]);
    eng.schedule(SimTime::ZERO, sender, SendNow(7));
    eng.run_to_completion();
    let r: &Receiver = eng.actor(receiver);
    assert!(r.got.is_empty());
    let stats = net.stats();
    assert_eq!(
        stats.dropped_partition, 1,
        "the drop is accounted per cause"
    );
    assert_eq!(stats.duplicated, 0, "a dropped delivery spawns no copy");
    assert_eq!(stats.sent, 0);
}

#[test]
fn disabled_fault_injection_keeps_the_default_stream() {
    // With all probabilities at zero the network must not consume any
    // RNG draws beyond the classic path: two identically seeded runs,
    // one built with the default config and one with explicit zeros,
    // deliver at identical instants.
    let run = |config: NetConfig| {
        let (mut eng, _net, sender, receiver) = build(config);
        for i in 0..5 {
            eng.schedule(SimTime::from_millis(i), sender, SendNow(i as u32));
        }
        eng.run_to_completion();
        let r: &Receiver = eng.actor(receiver);
        r.got.clone()
    };
    let a = run(NetConfig::default());
    let b = run(NetConfig {
        duplicate_probability: 0.0,
        reorder_probability: 0.0,
        reorder_window: SimDuration::ZERO,
        ..NetConfig::default()
    });
    assert_eq!(a, b);
}

#[test]
#[should_panic(expected = "probability out of range")]
fn invalid_duplicate_probability_rejected() {
    Network::paper_default().set_duplicate_probability(-0.1);
}

#[test]
#[should_panic(expected = "probability out of range")]
fn invalid_reorder_probability_rejected() {
    Network::paper_default().set_reorder(1.5, SimDuration::from_millis(1));
}
