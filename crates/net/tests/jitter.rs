//! Network jitter: enabled jitter spreads delivery times, stays within
//! its bound, and remains deterministic per seed.

use groupsafe_net::{Incoming, NetConfig, Network, NodeId};
use groupsafe_sim::{Actor, Ctx, Engine, Payload, SimDuration, SimTime};

struct Recorder {
    arrivals: Vec<SimTime>,
}

impl Actor for Recorder {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        if payload.downcast::<Incoming<u32>>().is_ok() {
            self.arrivals.push(ctx.now());
        }
    }
}

struct Sender {
    net: Network,
    count: u32,
}
struct Go;

impl Actor for Sender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        if payload.downcast::<Go>().is_ok() {
            for i in 0..self.count {
                let net = self.net.clone();
                net.send(ctx, NodeId(0), NodeId(1), i);
            }
        }
    }
}

fn run(seed: u64, jitter_us: u64) -> Vec<SimTime> {
    let mut eng = Engine::new(seed);
    let net = Network::new(NetConfig {
        latency: SimDuration::from_micros(70),
        jitter: SimDuration::from_micros(jitter_us),
        ..NetConfig::default()
    });
    let sender = eng.add_actor(Box::new(Sender {
        net: net.clone(),
        count: 50,
    }));
    let recorder = eng.add_actor(Box::new(Recorder { arrivals: vec![] }));
    net.register(NodeId(0), sender);
    net.register(NodeId(1), recorder);
    eng.schedule(SimTime::from_millis(1), sender, Go);
    eng.run_to_completion();
    let r: &Recorder = eng.actor(recorder);
    r.arrivals.clone()
}

#[test]
fn zero_jitter_is_constant_latency() {
    let arrivals = run(1, 0);
    assert_eq!(arrivals.len(), 50);
    assert!(arrivals
        .iter()
        .all(|&t| t == SimTime::from_millis(1) + SimDuration::from_micros(70)));
}

#[test]
fn jitter_spreads_within_bound() {
    let arrivals = run(1, 100);
    let base = SimTime::from_millis(1) + SimDuration::from_micros(70);
    let max = SimTime::from_millis(1) + SimDuration::from_micros(170);
    assert!(arrivals.iter().all(|&t| t >= base && t <= max));
    // With 50 samples over a 100 µs range, they cannot all coincide.
    let distinct: std::collections::BTreeSet<_> = arrivals.iter().collect();
    assert!(distinct.len() > 10, "jitter must actually spread arrivals");
}

#[test]
fn jitter_is_deterministic_per_seed() {
    assert_eq!(run(7, 100), run(7, 100));
    assert_ne!(run(7, 100), run(8, 100));
}
