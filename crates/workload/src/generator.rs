//! Transaction generation per Table 4 — deprecated shims over the core
//! builder's [`WorkloadSpec`](groupsafe_core::WorkloadSpec), which now
//! owns the generator (10–20 operations, each a read or a write with
//! equal probability, over a uniformly or hotspot-accessed database).

use rand::rngs::StdRng;

use groupsafe_core::OpGenerator;
use groupsafe_db::Operation;

use crate::params::PaperParams;

/// Generate one transaction's operations (Table 4: 10–20 operations,
/// each a read or a write with probability ½). Delegates to
/// [`WorkloadSpec::generate_txn`](groupsafe_core::WorkloadSpec::generate_txn);
/// the draw sequence is unchanged, so seeded runs reproduce exactly.
pub fn generate_txn(p: &PaperParams, rng: &mut StdRng) -> Vec<Operation> {
    p.workload_spec().generate_txn(rng)
}

/// Build a per-client [`OpGenerator`] closure over these parameters.
#[deprecated(
    note = "use `SystemBuilder::workload(params.workload_spec())` or `WorkloadSpec::generator` instead"
)]
pub fn table4_generator(p: &PaperParams) -> OpGenerator {
    p.workload_spec().generator()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_mix_match_table4() {
        let p = PaperParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut writes = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let ops = generate_txn(&p, &mut rng);
            assert!((10..=20).contains(&ops.len()), "len {}", ops.len());
            writes += ops.iter().filter(|o| o.is_write()).count();
            total += ops.len();
        }
        let ratio = writes as f64 / total as f64;
        assert!((0.45..=0.55).contains(&ratio), "write ratio {ratio}");
    }

    #[test]
    fn items_in_range() {
        let p = PaperParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            for op in generate_txn(&p, &mut rng) {
                assert!(op.item().0 < p.n_items);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let p = PaperParams {
            hot_access_fraction: 0.8,
            hot_set_fraction: 0.1,
            ..PaperParams::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let hot_limit = (p.n_items as f64 * p.hot_set_fraction) as u32;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            for op in generate_txn(&p, &mut rng) {
                if op.item().0 < hot_limit {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.7, "hot fraction {frac}");
    }

    #[test]
    #[allow(deprecated)]
    fn generator_closure_is_reusable() {
        let p = PaperParams::default();
        let mut g = table4_generator(&p);
        let mut rng = StdRng::seed_from_u64(4);
        let a = g(&mut rng);
        let b = g(&mut rng);
        assert!(!a.ops.is_empty() && !b.ops.is_empty());
        assert_ne!(a, b, "distinct transactions expected");
    }

    /// The shim and the spec's own generator must produce identical
    /// transactions from identical RNG states.
    #[test]
    #[allow(deprecated)]
    fn shim_matches_workload_spec() {
        let p = PaperParams::default();
        let spec = p.workload_spec();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut shim = table4_generator(&p);
        for _ in 0..50 {
            assert_eq!(shim(&mut a), spec.generate_plan(&mut b));
        }
    }
}
