//! Transaction generation per Table 4: 10–20 operations, each a read or a
//! write with equal probability, over a uniformly (or hotspot-) accessed
//! database of 10 000 items.

use rand::rngs::StdRng;
use rand::Rng;

use groupsafe_core::OpGenerator;
use groupsafe_db::{ItemId, Operation};

use crate::params::PaperParams;

/// Draw one item id under the (optional) hotspot model.
fn draw_item(p: &PaperParams, rng: &mut StdRng) -> ItemId {
    let hot_items = ((p.n_items as f64 * p.hot_set_fraction) as u32).max(1);
    if p.hot_access_fraction > 0.0 && rng.random_bool(p.hot_access_fraction) {
        ItemId(rng.random_range(0..hot_items))
    } else {
        ItemId(rng.random_range(0..p.n_items))
    }
}

/// Generate one transaction's operations (Table 4: 10–20 operations,
/// each a read or a write with probability ½). The replication layer
/// treats every write as an update of the current value (it records the
/// overwritten version), so write-write races are observable as
/// certification conflicts and as lazy lost updates without extra I/O.
pub fn generate_txn(p: &PaperParams, rng: &mut StdRng) -> Vec<Operation> {
    let len = rng.random_range(p.txn_len_min..=p.txn_len_max);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let item = draw_item(p, rng);
        if rng.random_bool(p.write_probability) {
            ops.push(Operation::Write(item, rng.random_range(-1_000_000..1_000_000)));
        } else {
            ops.push(Operation::Read(item));
        }
    }
    ops
}

/// Build a per-client [`OpGenerator`] closure over these parameters.
pub fn table4_generator(p: &PaperParams) -> OpGenerator {
    let p = p.clone();
    Box::new(move |rng: &mut StdRng| generate_txn(&p, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_mix_match_table4() {
        let p = PaperParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut writes = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let ops = generate_txn(&p, &mut rng);
            assert!((10..=20).contains(&ops.len()), "len {}", ops.len());
            writes += ops.iter().filter(|o| o.is_write()).count();
            total += ops.len();
        }
        let ratio = writes as f64 / total as f64;
        assert!((0.45..=0.55).contains(&ratio), "write ratio {ratio}");
    }

    #[test]
    fn items_in_range() {
        let p = PaperParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            for op in generate_txn(&p, &mut rng) {
                assert!(op.item().0 < p.n_items);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let p = PaperParams {
            hot_access_fraction: 0.8,
            hot_set_fraction: 0.1,
            ..PaperParams::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let hot_limit = (p.n_items as f64 * p.hot_set_fraction) as u32;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            for op in generate_txn(&p, &mut rng) {
                if op.item().0 < hot_limit {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.7, "hot fraction {frac}");
    }

    #[test]
    fn generator_closure_is_reusable() {
        let p = PaperParams::default();
        let mut g = table4_generator(&p);
        let mut rng = StdRng::seed_from_u64(4);
        let a = g(&mut rng);
        let b = g(&mut rng);
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "distinct transactions expected");
    }
}
