//! Table 4 of the paper, verbatim, as the canonical parameter set.

use groupsafe_core::WorkloadSpec;
use groupsafe_db::{BufferModel, DbConfig, FlushPolicy};
use groupsafe_sim::SimDuration;

/// The simulator parameters of Table 4.
#[derive(Debug, Clone)]
pub struct PaperParams {
    /// Number of items in the database.
    pub n_items: u32,
    /// Number of servers.
    pub n_servers: u32,
    /// Number of clients per server.
    pub clients_per_server: u32,
    /// Disks per server.
    pub disks_per_server: u32,
    /// CPUs per server.
    pub cpus_per_server: u32,
    /// Transaction length, minimum operations.
    pub txn_len_min: usize,
    /// Transaction length, maximum operations.
    pub txn_len_max: usize,
    /// Probability that an operation is a write.
    pub write_probability: f64,
    /// Buffer hit ratio.
    pub buffer_hit_ratio: f64,
    /// Minimum time for a read or write, milliseconds.
    pub io_min_ms: f64,
    /// Maximum time for a read or write, milliseconds.
    pub io_max_ms: f64,
    /// CPU time used for an I/O operation, milliseconds.
    pub cpu_per_io_ms: f64,
    /// Time for a message or broadcast on the network, milliseconds.
    pub net_ms: f64,
    /// CPU time for a network operation, milliseconds.
    pub net_cpu_ms: f64,
    /// Fraction of item accesses directed at the hot set (not in
    /// Table 4; 0 disables the hotspot — kept for the abort-rate
    /// calibration and the ablation benches).
    pub hot_access_fraction: f64,
    /// Fraction of the database forming the hot set.
    pub hot_set_fraction: f64,
    /// Fraction of generated transactions that are read-only (not in
    /// Table 4; 0 reproduces the paper's workload exactly — reads then
    /// only occur inside mixed transactions per `write_probability`).
    pub read_fraction: f64,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            n_items: 10_000,
            n_servers: 9,
            clients_per_server: 4,
            disks_per_server: 2,
            cpus_per_server: 2,
            txn_len_min: 10,
            txn_len_max: 20,
            write_probability: 0.5,
            buffer_hit_ratio: 0.2,
            io_min_ms: 4.0,
            io_max_ms: 12.0,
            cpu_per_io_ms: 0.4,
            net_ms: 0.07,
            net_cpu_ms: 0.07,
            // Not in Table 4: a mild hotspot calibrated so the group-safe
            // abort rate lands near the paper's "slightly below 7 %" (§6);
            // see DESIGN.md (substitutions). Set to 0 for a uniform
            // workload (abort rate then falls to ~2 %).
            hot_access_fraction: 0.15,
            hot_set_fraction: 0.02,
            read_fraction: 0.0,
        }
    }
}

impl PaperParams {
    /// The database engine configuration these parameters imply.
    pub fn db_config(&self) -> DbConfig {
        DbConfig {
            n_items: self.n_items,
            cpu_per_io: SimDuration::from_millis_f64(self.cpu_per_io_ms),
            buffer: BufferModel::Probabilistic {
                hit_ratio: self.buffer_hit_ratio,
            },
            // The replica server orchestrates all flushing per safety
            // level; the engine must never flush inside `commit`.
            flush_policy: FlushPolicy::Async,
            ..DbConfig::default()
        }
    }

    /// Total number of clients.
    pub fn n_clients(&self) -> u32 {
        self.n_servers * self.clients_per_server
    }

    /// The transaction-shape slice of these parameters, as the core
    /// builder's [`WorkloadSpec`] (same fields, same generator draws).
    pub fn workload_spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            n_items: self.n_items,
            txn_len_min: self.txn_len_min,
            txn_len_max: self.txn_len_max,
            write_probability: self.write_probability,
            hot_access_fraction: self.hot_access_fraction,
            hot_set_fraction: self.hot_set_fraction,
            read_fraction: self.read_fraction,
            ..WorkloadSpec::default()
        }
    }

    /// Render Table 4 in the paper's layout.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let rows: Vec<(&str, String)> = vec![
            (
                "Number of items in the database",
                format!("{}", self.n_items),
            ),
            ("Number of Servers", format!("{}", self.n_servers)),
            (
                "Number of Clients per Server",
                format!("{}", self.clients_per_server),
            ),
            ("Disks per Server", format!("{}", self.disks_per_server)),
            ("CPUs per Server", format!("{}", self.cpus_per_server)),
            (
                "Transaction Length",
                format!("{} - {} Operations", self.txn_len_min, self.txn_len_max),
            ),
            (
                "Probability that an operation is a write",
                format!("{:.0}%", self.write_probability * 100.0),
            ),
            (
                "Buffer hit ratio",
                format!("{:.0}%", self.buffer_hit_ratio * 100.0),
            ),
            (
                "Time for a read",
                format!("{} - {} ms", self.io_min_ms, self.io_max_ms),
            ),
            (
                "Time for a write",
                format!("{} - {} ms", self.io_min_ms, self.io_max_ms),
            ),
            (
                "CPU Time used for an I/O operation",
                format!("{} ms", self.cpu_per_io_ms),
            ),
            (
                "Time for a message or a broadcast on the Network",
                format!("{} ms", self.net_ms),
            ),
            (
                "CPU time for a network operation",
                format!("{} ms", self.net_cpu_ms),
            ),
        ];
        for (k, v) in rows {
            s.push_str(&format!("{k:<50} {v}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let p = PaperParams::default();
        assert_eq!(p.n_items, 10_000);
        assert_eq!(p.n_servers, 9);
        assert_eq!(p.clients_per_server, 4);
        assert_eq!(p.disks_per_server, 2);
        assert_eq!(p.cpus_per_server, 2);
        assert_eq!((p.txn_len_min, p.txn_len_max), (10, 20));
        assert_eq!(p.write_probability, 0.5);
        assert_eq!(p.buffer_hit_ratio, 0.2);
        assert_eq!((p.io_min_ms, p.io_max_ms), (4.0, 12.0));
        assert_eq!(p.cpu_per_io_ms, 0.4);
        assert_eq!(p.net_ms, 0.07);
        assert_eq!(p.n_clients(), 36);
    }

    #[test]
    fn render_contains_all_rows() {
        let t = PaperParams::default().render_table();
        assert!(t.contains("10000"));
        assert!(t.contains("10 - 20 Operations"));
        assert!(t.contains("0.07 ms"));
        assert_eq!(t.lines().count(), 13);
    }
}
