//! Fault-injection scenarios: the machinery behind the Table 1–3
//! reproductions.
//!
//! A [`CrashScenario`] runs the Table 4 workload against a chosen
//! technique, crashes a configurable subset of the servers mid-run
//! (optionally under a network partition, optionally recovering them and
//! restarting the group after a total failure), and then audits the
//! outcome: how many *acknowledged* transactions were lost, and whether
//! the surviving replicas agree.
//!
//! Deprecated in spirit: `CrashScenario` survives as a **thin shim over
//! the core scenario engine**. [`CrashScenario::scenario_plan`] compiles
//! the experiment into a declarative
//! [`ScenarioPlan`], and
//! [`run_crash_scenario`] simply installs that plan and drives the
//! [`Run`](groupsafe_core::Run) lifecycle. The port is equivalence-locked:
//! `tests/crash_scenario_equivalence.rs` pins the engine fingerprints of
//! every historical scenario shape against values captured from the
//! original imperative implementation. New code should build
//! `ScenarioPlan`s directly.

use groupsafe_core::{ScenarioEvent, ScenarioPlan, ScenarioStep, System, Technique};
use groupsafe_sim::{SimDuration, SimTime};

use crate::experiment::{builder_for, RunConfig};
use crate::params::PaperParams;

/// What happens to the crashed servers afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPlan {
    /// They stay down for the rest of the run.
    StayDown,
    /// They recover after the given downtime. If *every* server crashed
    /// (total failure) and the technique runs in the dynamic model, the
    /// driver restarts the group and reconciles to the most advanced
    /// recovered state (durable-prefix union).
    Recover {
        /// Downtime before recovery.
        downtime: SimDuration,
    },
}

/// A crash experiment.
#[derive(Debug, Clone)]
pub struct CrashScenario {
    /// Technique under test.
    pub technique: Technique,
    /// Table 4 parameters (shrink `n_servers` for quicker experiments).
    pub params: PaperParams,
    /// Offered load.
    pub load_tps: f64,
    /// Run this long before any failure.
    pub steady_for: SimDuration,
    /// Servers to crash (ids into `0..n_servers`).
    pub crash: Vec<u32>,
    /// Isolate these servers from the rest just before the crash window
    /// (non-uniform delivery can then acknowledge messages nobody else
    /// ever receives — the 0-safe exposure).
    pub partition_before: Vec<u32>,
    /// How long the partition holds before the crash.
    pub partition_hold: SimDuration,
    /// Recovery plan.
    pub recovery: RecoveryPlan,
    /// Lazy propagation interval, ms (the 1-safe inconsistency window).
    pub lazy_prop_ms: f64,
    /// Background WAL flush interval, ms (the group-safe asynchronous-
    /// durability window).
    pub wal_flush_ms: f64,
    /// Crashed servers that stay down even under a `Recover` plan (e.g.
    /// "the delegate never recovers", Table 3's right column).
    pub stay_down: Vec<u32>,
    /// Crash this server later than the rest by the given delay: it keeps
    /// draining its pipeline — flushing and acknowledging — while the
    /// group is already gone, which is exactly the delegate-outlives-the-
    /// group window of Table 3.
    pub crash_last: Option<(u32, SimDuration)>,
    /// How long to keep running (and loading) after the crash.
    pub run_after: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl CrashScenario {
    /// A small-system scenario (5 servers, lighter load) for tests.
    pub fn small(technique: Technique, crash: Vec<u32>, seed: u64) -> Self {
        CrashScenario {
            technique,
            params: PaperParams {
                n_servers: 5,
                clients_per_server: 2,
                ..PaperParams::default()
            },
            load_tps: 20.0,
            // Not a multiple of any background interval: the crash must be
            // able to land inside propagation/flush windows.
            steady_for: SimDuration::from_millis(3_330),
            crash,
            partition_before: Vec::new(),
            partition_hold: SimDuration::from_millis(200),
            recovery: RecoveryPlan::StayDown,
            lazy_prop_ms: 500.0,
            wal_flush_ms: 200.0,
            stay_down: Vec::new(),
            crash_last: None,
            run_after: SimDuration::from_secs(3),
            seed,
        }
    }

    /// The instant the crash block strikes (after any partition hold).
    fn crash_instant(&self) -> SimTime {
        let base = SimTime::ZERO + self.steady_for;
        if self.partition_before.is_empty() {
            base
        } else {
            base + self.partition_hold
        }
    }

    /// Compile this experiment into the declarative scenario timeline it
    /// denotes: partition before the crash window, the crash block (with
    /// scripted recoveries and the optional delayed "delegate outlives
    /// the group" strike), the heal, and the operator restart after a
    /// total failure in the dynamic model.
    pub fn scenario_plan(&self) -> ScenarioPlan {
        let partition_at = SimTime::ZERO + self.steady_for;
        let strike = self.crash_instant();
        let mut plan = ScenarioPlan::new();
        if !self.partition_before.is_empty() {
            plan = plan.partition(partition_at, vec![self.partition_before.clone()]);
        }
        let stagger = self.crash_last.map(|(_, d)| d).unwrap_or(SimDuration::ZERO);
        for &i in &self.crash {
            let after = match self.crash_last {
                Some((last, d)) if last == i => d,
                _ => SimDuration::ZERO,
            };
            let recover_after = match self.recovery {
                RecoveryPlan::StayDown => None,
                RecoveryPlan::Recover { .. } if self.stay_down.contains(&i) => None,
                // Every recovery lands at the same instant:
                // strike + stagger + downtime.
                RecoveryPlan::Recover { downtime } => Some(stagger + downtime - after),
            };
            plan = plan.then(ScenarioStep {
                at: strike,
                event: ScenarioEvent::Crash {
                    server: i,
                    after,
                    recover_after,
                },
            });
        }
        if !self.partition_before.is_empty() {
            plan = plan.heal(strike);
        }
        if let RecoveryPlan::Recover { downtime } = self.recovery {
            let total_failure = self.crash.len() == self.params.n_servers as usize;
            let dynamic = self
                .technique
                .gcs_config()
                .is_some_and(|c| c.model == groupsafe_gcs::GcsModel::ViewBased);
            if total_failure && dynamic {
                // Dynamic model, total failure: the group cannot re-form
                // on its own — script the operator restart.
                let recovered: Vec<u32> = self
                    .crash
                    .iter()
                    .copied()
                    .filter(|i| !self.stay_down.contains(i))
                    .collect();
                let recover_at = strike + stagger + downtime;
                plan = plan.restart_group(recover_at + SimDuration::from_millis(500), recovered);
            }
        }
        plan
    }

    /// The [`RunConfig`] whose builder translation wires this scenario's
    /// system (crash scenarios and the throughput harnesses always share
    /// one wiring).
    fn run_config(&self) -> RunConfig {
        RunConfig {
            technique: self.technique,
            load_tps: self.load_tps,
            closed_loop: false,
            assumed_resp_ms: 70.0,
            lazy_prop_ms: self.lazy_prop_ms,
            wal_flush_ms: self.wal_flush_ms,
            params: self.params.clone(),
            shards: 1,
            cross_shard_fraction: 0.0,
            warmup: SimDuration::ZERO,
            duration: self.steady_for + self.run_after,
            drain: SimDuration::from_secs(3),
            seed: self.seed,
        }
    }
}

/// Audit of a crash run.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Transactions the clients were told had committed.
    pub acked: usize,
    /// Acknowledged transactions absent from every live replica.
    pub lost: usize,
    /// Distinct state digests among live replicas (1 = agreement).
    pub distinct_states: usize,
    /// Committed acknowledgements that arrived after the crash instant
    /// (the system kept making progress).
    pub acked_after_crash: usize,
    /// Client-observed timeouts (failovers).
    pub timeouts: u64,
    /// The engine's dispatch fingerprint at audit time (determinism and
    /// equivalence witness).
    pub fingerprint: u64,
}

/// Run a crash scenario to completion and audit it: compile it to its
/// [`ScenarioPlan`], install the plan, and let the hook-aware [`Run`]
/// lifecycle replay the timeline.
///
/// [`Run`]: groupsafe_core::Run
pub fn run_crash_scenario(sc: &CrashScenario) -> CrashOutcome {
    let mut run = builder_for(&sc.run_config())
        .scenario(sc.scenario_plan())
        .build()
        .expect("a crash scenario always denotes a valid system");
    let crash_instant = sc.crash_instant();
    let end = crash_instant + sc.run_after;
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(3));
    audit(run.system(), crash_instant)
}

fn audit(system: &System, crash_instant: SimTime) -> CrashOutcome {
    let oracle = system.oracle.borrow();
    let acked = oracle.acked.len();
    let acked_after_crash = oracle
        .acked
        .values()
        .filter(|a| a.at > crash_instant)
        .count();
    let timeouts = oracle.timeouts;
    drop(oracle);
    let lost = system.lost_transactions().len();
    let distinct_states = system.convergence().len();
    CrashOutcome {
        acked,
        lost,
        distinct_states,
        acked_after_crash,
        timeouts,
        fingerprint: system.engine.fingerprint(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsafe_core::SafetyLevel;

    /// Group-safe survives a minority crash with zero loss and keeps
    /// serving (Table 2, "less than n crashes").
    #[test]
    fn group_safe_minority_crash_no_loss() {
        let sc = CrashScenario::small(Technique::Dsm(SafetyLevel::GroupSafe), vec![1, 3], 21);
        let out = run_crash_scenario(&sc);
        assert!(out.acked > 20, "acked {}", out.acked);
        assert_eq!(out.lost, 0, "group-safe must not lose under minority crash");
        assert!(out.acked_after_crash > 0, "system must keep committing");
    }

    /// Lazy (1-safe) loses transactions when the delegate crashes before
    /// propagating (Table 2, "0 crashes").
    #[test]
    fn lazy_delegate_crash_loses() {
        // Crash all-but-one delegates to make the window essentially
        // certain to contain un-propagated commits.
        let sc = CrashScenario {
            load_tps: 40.0,
            ..CrashScenario::small(Technique::Lazy, vec![0], 23)
        };
        let out = run_crash_scenario(&sc);
        assert!(out.acked > 20);
        assert!(
            out.lost > 0,
            "1-safe must lose delegate-local commits (acked {} lost {})",
            out.acked,
            out.lost
        );
    }
}
