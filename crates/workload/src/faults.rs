//! Fault-injection scenarios: the machinery behind the Table 1–3
//! reproductions.
//!
//! A [`CrashScenario`] runs the Table 4 workload against a chosen
//! technique, crashes a configurable subset of the servers mid-run
//! (optionally under a network partition, optionally recovering them and
//! restarting the group after a total failure), and then audits the
//! outcome: how many *acknowledged* transactions were lost, and whether
//! the surviving replicas agree.
//!
//! Built on the core [`Run`](groupsafe_core::Run) handle's stepwise API:
//! the builder wires the system, the scenario drives the phases by hand
//! (partitions and operator-style restarts need mid-run control the
//! declarative `FaultPlan` does not model).

use groupsafe_core::{InstallCheckpointCmd, RestartServerCmd, Run, System, Technique};
use groupsafe_net::NodeId;
use groupsafe_sim::{SimDuration, SimTime};

use crate::experiment::{builder_for, RunConfig};
use crate::params::PaperParams;

/// What happens to the crashed servers afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPlan {
    /// They stay down for the rest of the run.
    StayDown,
    /// They recover after the given downtime. If *every* server crashed
    /// (total failure) and the technique runs in the dynamic model, the
    /// driver restarts the group and reconciles to the most advanced
    /// recovered state (durable-prefix union).
    Recover {
        /// Downtime before recovery.
        downtime: SimDuration,
    },
}

/// A crash experiment.
#[derive(Debug, Clone)]
pub struct CrashScenario {
    /// Technique under test.
    pub technique: Technique,
    /// Table 4 parameters (shrink `n_servers` for quicker experiments).
    pub params: PaperParams,
    /// Offered load.
    pub load_tps: f64,
    /// Run this long before any failure.
    pub steady_for: SimDuration,
    /// Servers to crash (ids into `0..n_servers`).
    pub crash: Vec<u32>,
    /// Isolate these servers from the rest just before the crash window
    /// (non-uniform delivery can then acknowledge messages nobody else
    /// ever receives — the 0-safe exposure).
    pub partition_before: Vec<u32>,
    /// How long the partition holds before the crash.
    pub partition_hold: SimDuration,
    /// Recovery plan.
    pub recovery: RecoveryPlan,
    /// Lazy propagation interval, ms (the 1-safe inconsistency window).
    pub lazy_prop_ms: f64,
    /// Background WAL flush interval, ms (the group-safe asynchronous-
    /// durability window).
    pub wal_flush_ms: f64,
    /// Crashed servers that stay down even under a `Recover` plan (e.g.
    /// "the delegate never recovers", Table 3's right column).
    pub stay_down: Vec<u32>,
    /// Crash this server later than the rest by the given delay: it keeps
    /// draining its pipeline — flushing and acknowledging — while the
    /// group is already gone, which is exactly the delegate-outlives-the-
    /// group window of Table 3.
    pub crash_last: Option<(u32, SimDuration)>,
    /// How long to keep running (and loading) after the crash.
    pub run_after: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl CrashScenario {
    /// A small-system scenario (5 servers, lighter load) for tests.
    pub fn small(technique: Technique, crash: Vec<u32>, seed: u64) -> Self {
        CrashScenario {
            technique,
            params: PaperParams {
                n_servers: 5,
                clients_per_server: 2,
                ..PaperParams::default()
            },
            load_tps: 20.0,
            // Not a multiple of any background interval: the crash must be
            // able to land inside propagation/flush windows.
            steady_for: SimDuration::from_millis(3_330),
            crash,
            partition_before: Vec::new(),
            partition_hold: SimDuration::from_millis(200),
            recovery: RecoveryPlan::StayDown,
            lazy_prop_ms: 500.0,
            wal_flush_ms: 200.0,
            stay_down: Vec::new(),
            crash_last: None,
            run_after: SimDuration::from_secs(3),
            seed,
        }
    }

    /// Wire the scenario's system through the canonical Table 4
    /// translation ([`builder_for`]), so crash scenarios and the
    /// throughput harnesses always share one wiring.
    fn run_handle(&self) -> Run {
        let cfg = RunConfig {
            technique: self.technique,
            load_tps: self.load_tps,
            closed_loop: false,
            assumed_resp_ms: 70.0,
            lazy_prop_ms: self.lazy_prop_ms,
            wal_flush_ms: self.wal_flush_ms,
            params: self.params.clone(),
            warmup: SimDuration::ZERO,
            duration: self.steady_for + self.run_after,
            drain: SimDuration::from_secs(3),
            seed: self.seed,
        };
        builder_for(&cfg)
            .build()
            .expect("a crash scenario always denotes a valid system")
    }
}

/// Audit of a crash run.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Transactions the clients were told had committed.
    pub acked: usize,
    /// Acknowledged transactions absent from every live replica.
    pub lost: usize,
    /// Distinct state digests among live replicas (1 = agreement).
    pub distinct_states: usize,
    /// Committed acknowledgements that arrived after the crash instant
    /// (the system kept making progress).
    pub acked_after_crash: usize,
    /// Client-observed timeouts (failovers).
    pub timeouts: u64,
}

/// Run a crash scenario to completion and audit it.
pub fn run_crash_scenario(sc: &CrashScenario) -> CrashOutcome {
    let mut run = sc.run_handle();
    run.start();

    let crash_at = SimTime::ZERO + sc.steady_for;
    run.run_until(crash_at);

    if !sc.partition_before.is_empty() {
        // Isolated servers take their home clients with them; everyone
        // else (servers and clients) forms the majority side.
        let system = run.system_mut();
        let n = system.n_servers;
        let total_nodes = system.net.node_count() as u32;
        let mut isolated: Vec<NodeId> = sc.partition_before.iter().map(|&i| NodeId(i)).collect();
        for c in n..total_nodes {
            let home = (c - n) % n;
            if sc.partition_before.contains(&home) {
                isolated.push(NodeId(c));
            }
        }
        let rest: Vec<NodeId> = (0..total_nodes)
            .map(NodeId)
            .filter(|x| !isolated.contains(x))
            .collect();
        system.net.partition(&[&isolated, &rest]);
        // Let the isolated side operate on its own for a while.
        run.run_until(crash_at + sc.partition_hold);
    }

    let system = run.system_mut();
    let now = system.engine.now();
    for &i in &sc.crash {
        let at = match sc.crash_last {
            Some((last, delay)) if last == i => now + delay,
            _ => now,
        };
        system.engine.schedule_crash(at, system.servers[i as usize]);
    }
    if !sc.partition_before.is_empty() {
        system.net.heal();
    }
    let crash_instant = now;

    if let RecoveryPlan::Recover { downtime } = sc.recovery {
        let stagger = sc.crash_last.map(|(_, d)| d).unwrap_or(SimDuration::ZERO);
        let recover_at = crash_instant + stagger + downtime;
        let recovered: Vec<u32> = sc
            .crash
            .iter()
            .copied()
            .filter(|i| !sc.stay_down.contains(i))
            .collect();
        for &i in &recovered {
            system
                .engine
                .schedule_recover(recover_at, system.servers[i as usize]);
        }
        let total_failure = sc.crash.len() == system.n_servers as usize;
        if total_failure
            && sc
                .technique
                .gcs_config()
                .is_some_and(|c| c.model == groupsafe_gcs::GcsModel::ViewBased)
        {
            // Dynamic model, total failure: the group cannot re-form on
            // its own. Run to the recovery point, then restart and
            // reconcile (operator action).
            run.run_until(recover_at + SimDuration::from_millis(500));
            restart_and_reconcile(run.system_mut(), &recovered);
        }
    }

    let end = crash_instant + sc.run_after;
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(3));

    audit(run.system(), crash_instant)
}

/// Operator-driven restart after total failure: every server rejoins a
/// fresh group; all adopt the most advanced recovered state (all states
/// are durable prefixes of the same delivery history, so the maximum is
/// their union).
fn restart_and_reconcile(system: &mut System, crashed: &[u32]) {
    let now = system.engine.now();
    // Find the most advanced recovered state.
    let (best, seq_base) = {
        let mut best = 0u32;
        let mut best_v = 0;
        for &i in crashed {
            let v = system.server(i).db().max_version();
            if v >= best_v {
                best_v = v;
                best = i;
            }
        }
        (best, best_v)
    };
    let ckpt = system.server(best).db().checkpoint();
    let members: Vec<NodeId> = crashed.iter().map(|&i| NodeId(i)).collect();
    for &i in crashed {
        let actor = system.servers[i as usize];
        if i != best {
            system
                .engine
                .schedule_resilient(now, actor, InstallCheckpointCmd(ckpt.clone()));
        }
        system.engine.schedule_resilient(
            now,
            actor,
            RestartServerCmd {
                members: members.clone(),
                seq_base,
            },
        );
    }
}

fn audit(system: &System, crash_instant: SimTime) -> CrashOutcome {
    let oracle = system.oracle.borrow();
    let acked = oracle.acked.len();
    let acked_after_crash = oracle
        .acked
        .values()
        .filter(|a| a.at > crash_instant)
        .count();
    let timeouts = oracle.timeouts;
    drop(oracle);
    let lost = system.lost_transactions().len();
    let distinct_states = system.convergence().len();
    CrashOutcome {
        acked,
        lost,
        distinct_states,
        acked_after_crash,
        timeouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsafe_core::SafetyLevel;

    /// Group-safe survives a minority crash with zero loss and keeps
    /// serving (Table 2, "less than n crashes").
    #[test]
    fn group_safe_minority_crash_no_loss() {
        let sc = CrashScenario::small(Technique::Dsm(SafetyLevel::GroupSafe), vec![1, 3], 21);
        let out = run_crash_scenario(&sc);
        assert!(out.acked > 20, "acked {}", out.acked);
        assert_eq!(out.lost, 0, "group-safe must not lose under minority crash");
        assert!(out.acked_after_crash > 0, "system must keep committing");
    }

    /// Lazy (1-safe) loses transactions when the delegate crashes before
    /// propagating (Table 2, "0 crashes").
    #[test]
    fn lazy_delegate_crash_loses() {
        // Crash all-but-one delegates to make the window essentially
        // certain to contain un-propagated commits.
        let sc = CrashScenario {
            load_tps: 40.0,
            ..CrashScenario::small(Technique::Lazy, vec![0], 23)
        };
        let out = run_crash_scenario(&sc);
        assert!(out.acked > 20);
        assert!(
            out.lost > 0,
            "1-safe must lose delegate-local commits (acked {} lost {})",
            out.acked,
            out.lost
        );
    }
}
