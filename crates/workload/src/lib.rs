//! # groupsafe-workload — Table 4 workloads and the experiment runner
//!
//! Generates the paper's workload (10–20 operations per transaction, 50 %
//! writes, 10 000 items, 9 servers × 4 clients), assembles full systems
//! through [`groupsafe_core::System`], and runs warm-up / measurement /
//! drain phases producing [`RunReport`]s — the rows of Fig. 9 and of the
//! fault-injection tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod faults;
pub mod generator;
pub mod params;

pub use experiment::{csv_header, report, run, sweep, system_config, RunConfig, RunReport};
pub use faults::{run_crash_scenario, CrashOutcome, CrashScenario, RecoveryPlan};
pub use generator::{generate_txn, table4_generator};
pub use params::PaperParams;
