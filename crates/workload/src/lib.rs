//! # groupsafe-workload — Table 4 workloads and the experiment runner
//!
//! Generates the paper's workload (10–20 operations per transaction, 50 %
//! writes, 10 000 items, 9 servers × 4 clients), assembles full systems
//! through the core crate's fluent
//! [`SystemBuilder`](groupsafe_core::SystemBuilder) ([`builder_for`] is
//! the canonical `RunConfig` → builder translation), and runs warm-up /
//! measurement / drain phases producing [`RunReport`]s — the rows of
//! Fig. 9 and of the fault-injection tables.
//!
//! `system_config` and `table4_generator` survive as deprecated shims
//! delegating to the builder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod faults;
pub mod generator;
pub mod params;

#[allow(deprecated)]
pub use experiment::system_config;
pub use experiment::{builder_for, csv_header, report, run, sweep, RunConfig, RunReport};
pub use faults::{run_crash_scenario, CrashOutcome, CrashScenario, RecoveryPlan};
pub use generator::generate_txn;
#[allow(deprecated)]
pub use generator::table4_generator;
pub use params::PaperParams;
