//! The experiment runner, as a thin veneer over the core crate's
//! [`SystemBuilder`] → [`Run`](groupsafe_core::Run) →
//! [`Report`] pipeline.
//!
//! [`RunConfig`] packages the paper's experiment knobs (technique, load,
//! Table 4 parameters, run phases); [`builder_for`] is the canonical
//! translation into a [`SystemBuilder`]. The historical entry points
//! ([`run`], [`sweep`], [`report`], [`csv_header`]) are kept for the
//! figure harnesses; [`system_config`] survives only as a deprecated
//! shim proving the builder reproduces the old wiring bit-for-bit.

use groupsafe_core::{Load, Report, System, SystemBuilder, SystemConfig};
use groupsafe_core::{ReplicaConfig, Technique};
use groupsafe_net::NetConfig;
use groupsafe_sim::SimDuration;

use crate::params::PaperParams;

/// One experiment run's configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Replication technique under test.
    pub technique: Technique,
    /// Offered load, transactions per second (whole system).
    pub load_tps: f64,
    /// Closed-loop clients (the paper's model: 4 clients per server whose
    /// think time is calibrated for the target load assuming
    /// `assumed_resp_ms`). When false, open-loop Poisson arrivals.
    pub closed_loop: bool,
    /// Assumed base response time for the closed-loop think calibration.
    pub assumed_resp_ms: f64,
    /// Lazy propagation batching interval, ms (the 1-safe inconsistency
    /// window; only affects `Technique::Lazy`).
    pub lazy_prop_ms: f64,
    /// Background WAL flush interval, ms (the asynchronous-durability
    /// window group-safety exposes on total failure).
    pub wal_flush_ms: f64,
    /// Table 4 parameters.
    pub params: PaperParams,
    /// Replica groups the database is sharded over (1 = the classic
    /// single-group system; `params.n_servers` then counts per group).
    pub shards: u32,
    /// Fraction of generated transactions spanning two groups (only
    /// meaningful with `shards > 1`; committed via the ordered
    /// cross-group protocol).
    pub cross_shard_fraction: f64,
    /// Warm-up (excluded from measurements).
    pub warmup: SimDuration,
    /// Measurement window.
    pub duration: SimDuration,
    /// Drain window after measurement (no new arrivals; used for the
    /// convergence check).
    pub drain: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl RunConfig {
    /// A paper-defaults run at `load_tps` for `technique`.
    pub fn paper(technique: Technique, load_tps: f64, seed: u64) -> Self {
        RunConfig {
            technique,
            load_tps,
            closed_loop: true,
            assumed_resp_ms: 70.0,
            lazy_prop_ms: 20.0,
            wal_flush_ms: 20.0,
            params: PaperParams::default(),
            shards: 1,
            cross_shard_fraction: 0.0,
            warmup: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(60),
            drain: SimDuration::from_secs(3),
            seed,
        }
    }
}

/// The canonical [`SystemBuilder`] a [`RunConfig`] denotes: Table 4
/// hardware and workload, the paper's load model, and the run phases.
pub fn builder_for(cfg: &RunConfig) -> SystemBuilder {
    let p = &cfg.params;
    let load = if cfg.closed_loop {
        Load::closed_tps_assuming(cfg.load_tps, cfg.assumed_resp_ms)
    } else {
        Load::open_tps(cfg.load_tps)
    };
    System::builder()
        .servers(p.n_servers)
        .clients_per_server(p.clients_per_server)
        .shards(cfg.shards.max(1))
        .cross_shard_fraction(cfg.cross_shard_fraction)
        .replica(ReplicaConfig {
            technique: cfg.technique,
            db: p.db_config(),
            cpus: p.cpus_per_server as usize,
            lazy_prop_interval: SimDuration::from_millis_f64(cfg.lazy_prop_ms),
            wal_flush_interval: SimDuration::from_millis_f64(cfg.wal_flush_ms),
            ..ReplicaConfig::default()
        })
        .workload(p.workload_spec())
        .load(load)
        .client_timeout(SimDuration::from_secs(5))
        .net(NetConfig {
            latency: SimDuration::from_millis_f64(p.net_ms),
            ..NetConfig::default()
        })
        .warmup(cfg.warmup)
        .measure(cfg.duration)
        .drain(cfg.drain)
        .seed(cfg.seed)
}

/// The measured outcome of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Technique label.
    pub technique: &'static str,
    /// Offered load (tps).
    pub offered_tps: f64,
    /// Achieved committed throughput in the measurement window (tps).
    pub achieved_tps: f64,
    /// Mean end-to-end response time (submission to commit, including
    /// abort resubmissions), ms — what Fig. 9 plots.
    pub mean_ms: f64,
    /// Median response time, ms.
    pub p50_ms: f64,
    /// 95th percentile response time, ms.
    pub p95_ms: f64,
    /// Certification/deadlock abort rate (aborted attempts over answered
    /// attempts, whole run).
    pub abort_rate: f64,
    /// Committed-transaction acknowledgements in the measurement window.
    pub samples: usize,
    /// Acknowledged transactions missing from all live replicas.
    pub lost: usize,
    /// Number of distinct state digests across live replicas after the
    /// drain (1 = converged).
    pub distinct_states: usize,
    /// Lost updates among acknowledged commits (lazy anomaly, §7).
    pub lost_updates: usize,
}

impl RunReport {
    /// Project a core [`Report`] onto the historical CSV row shape.
    pub fn from_report(offered_tps: f64, r: &Report) -> Self {
        RunReport {
            technique: r.technique,
            offered_tps,
            achieved_tps: r.achieved_tps,
            mean_ms: r.mean_ms,
            p50_ms: r.p50_ms,
            p95_ms: r.p95_ms,
            abort_rate: r.abort_rate,
            samples: r.commits,
            lost: r.lost,
            distinct_states: r.distinct_states,
            lost_updates: r.lost_updates,
        }
    }

    /// One CSV row (see [`csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.1},{:.2},{:.2},{:.2},{:.2},{:.4},{},{},{},{}",
            self.technique,
            self.offered_tps,
            self.achieved_tps,
            self.mean_ms,
            self.p50_ms,
            self.p95_ms,
            self.abort_rate,
            self.samples,
            self.lost,
            self.distinct_states,
            self.lost_updates,
        )
    }
}

/// Header for [`RunReport::csv_row`].
pub fn csv_header() -> &'static str {
    "technique,offered_tps,achieved_tps,mean_ms,p50_ms,p95_ms,abort_rate,samples,lost,distinct_states,lost_updates"
}

/// Build the [`SystemConfig`] a run implies.
#[deprecated(note = "use `builder_for` / `groupsafe_core::SystemBuilder` instead")]
pub fn system_config(cfg: &RunConfig) -> SystemConfig {
    builder_for(cfg)
        .to_system_config()
        .expect("a RunConfig always denotes a valid system")
}

/// Run one experiment to completion and report.
pub fn run(cfg: &RunConfig) -> RunReport {
    let report = builder_for(cfg)
        .build()
        .expect("a RunConfig always denotes a valid system")
        .execute();
    RunReport::from_report(cfg.load_tps, &report)
}

/// Extract a [`RunReport`] from a finished, externally-driven system.
pub fn report(cfg: &RunConfig, system: &mut System) -> RunReport {
    let lost = system.lost_transactions().len();
    let distinct_states = system.convergence().len();
    let lost_updates = groupsafe_core::check_lost_updates(&system.oracle.borrow()).len();
    let abort_rate = system.oracle.borrow().abort_rate();
    let technique = system.technique().label();
    let h = system
        .engine
        .metrics_mut()
        .histogram_mut("response_total_ms");
    let samples = h.count();
    let mean_ms = h.mean();
    let p50_ms = h.quantile(0.50);
    let p95_ms = h.quantile(0.95);
    RunReport {
        technique,
        offered_tps: cfg.load_tps,
        achieved_tps: samples as f64 / cfg.duration.as_secs_f64().max(1e-9),
        mean_ms,
        p50_ms,
        p95_ms,
        abort_rate,
        samples,
        lost,
        distinct_states,
        lost_updates,
    }
}

/// Run a load sweep for one technique.
pub fn sweep(technique: Technique, loads: &[f64], base: &RunConfig) -> Vec<RunReport> {
    loads
        .iter()
        .map(|&tps| {
            let cfg = RunConfig {
                technique,
                load_tps: tps,
                ..base.clone()
            };
            run(&cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsafe_core::SafetyLevel;

    fn small_cfg(technique: Technique, seed: u64) -> RunConfig {
        RunConfig {
            technique,
            load_tps: 10.0,
            closed_loop: false,
            params: PaperParams {
                n_servers: 3,
                clients_per_server: 2,
                ..PaperParams::default()
            },
            warmup: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(5),
            drain: SimDuration::from_secs(2),
            ..RunConfig::paper(technique, 10.0, seed)
        }
    }

    /// A small smoke run: the whole stack commits transactions, replicas
    /// converge, nothing is lost.
    #[test]
    fn group_safe_smoke_run() {
        let r = run(&small_cfg(Technique::Dsm(SafetyLevel::GroupSafe), 7));
        assert!(r.samples > 20, "expected commits, got {}", r.samples);
        assert!(r.mean_ms > 1.0, "responses should cost time: {}", r.mean_ms);
        assert_eq!(r.lost, 0, "no transaction may be lost");
        assert_eq!(r.distinct_states, 1, "replicas must converge");
    }

    #[test]
    fn lazy_smoke_run() {
        let r = run(&small_cfg(Technique::Lazy, 11));
        assert!(r.samples > 20, "expected commits, got {}", r.samples);
        assert_eq!(r.lost, 0);
        assert_eq!(r.distinct_states, 1, "lazy converges after drain");
    }

    /// The deprecated shim and the builder must denote the *same* system.
    #[test]
    #[allow(deprecated)]
    fn system_config_shim_matches_builder() {
        let cfg = small_cfg(Technique::Dsm(SafetyLevel::GroupSafe), 3);
        let shim = system_config(&cfg);
        let built = builder_for(&cfg).to_system_config().expect("valid");
        assert_eq!(shim.n_servers, built.n_servers);
        assert_eq!(shim.clients_per_server, built.clients_per_server);
        assert_eq!(shim.seed, built.seed);
        assert_eq!(shim.measure_from, built.measure_from);
        assert_eq!(shim.client_timeout, built.client_timeout);
        assert_eq!(shim.replica.technique, built.replica.technique);
    }
}
