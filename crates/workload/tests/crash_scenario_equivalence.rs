//! Equivalence lock for the `CrashScenario` → `ScenarioPlan` port.
//!
//! `run_crash_scenario` is a thin shim compiling the experiment into a
//! declarative plan. This suite keeps the ORIGINAL imperative driver
//! (verbatim, as a test-local reference implementation) and runs every
//! pinned scenario shape through both paths: the audits — including the
//! engine's dispatch fingerprint, the strictest witness the simulator
//! has — must match bit-for-bit. Any scheduling drift in the scenario
//! engine (hook ordering, event push order, partition/heal timing, the
//! operator-restart protocol) fails this suite.

use groupsafe_core::{reconcile_restart, SafetyLevel, Technique};
use groupsafe_net::NodeId;
use groupsafe_sim::{SimDuration, SimTime};
use groupsafe_workload::{
    builder_for, run_crash_scenario, CrashOutcome, CrashScenario, RecoveryPlan, RunConfig,
};

/// The pre-port `run_crash_scenario`, kept verbatim as the reference the
/// scenario-engine shim is held to.
fn run_crash_scenario_imperative(sc: &CrashScenario) -> CrashOutcome {
    let cfg = RunConfig {
        technique: sc.technique,
        load_tps: sc.load_tps,
        closed_loop: false,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: sc.lazy_prop_ms,
        wal_flush_ms: sc.wal_flush_ms,
        params: sc.params.clone(),
        shards: 1,
        cross_shard_fraction: 0.0,
        warmup: SimDuration::ZERO,
        duration: sc.steady_for + sc.run_after,
        drain: SimDuration::from_secs(3),
        seed: sc.seed,
    };
    let mut run = builder_for(&cfg)
        .build()
        .expect("a crash scenario always denotes a valid system");
    run.start();

    let crash_at = SimTime::ZERO + sc.steady_for;
    run.run_until(crash_at);

    if !sc.partition_before.is_empty() {
        let system = run.system_mut();
        let n = system.n_servers;
        let total_nodes = system.net.node_count() as u32;
        let mut isolated: Vec<NodeId> = sc.partition_before.iter().map(|&i| NodeId(i)).collect();
        for c in n..total_nodes {
            let home = (c - n) % n;
            if sc.partition_before.contains(&home) {
                isolated.push(NodeId(c));
            }
        }
        let rest: Vec<NodeId> = (0..total_nodes)
            .map(NodeId)
            .filter(|x| !isolated.contains(x))
            .collect();
        system.net.partition(&[&isolated, &rest]);
        run.run_until(crash_at + sc.partition_hold);
    }

    let system = run.system_mut();
    let now = system.engine.now();
    for &i in &sc.crash {
        let at = match sc.crash_last {
            Some((last, delay)) if last == i => now + delay,
            _ => now,
        };
        system.engine.schedule_crash(at, system.servers[i as usize]);
    }
    if !sc.partition_before.is_empty() {
        system.net.heal();
    }
    let crash_instant = now;

    if let RecoveryPlan::Recover { downtime } = sc.recovery {
        let stagger = sc.crash_last.map(|(_, d)| d).unwrap_or(SimDuration::ZERO);
        let recover_at = crash_instant + stagger + downtime;
        let recovered: Vec<u32> = sc
            .crash
            .iter()
            .copied()
            .filter(|i| !sc.stay_down.contains(i))
            .collect();
        for &i in &recovered {
            system
                .engine
                .schedule_recover(recover_at, system.servers[i as usize]);
        }
        let total_failure = sc.crash.len() == system.n_servers as usize;
        if total_failure
            && sc
                .technique
                .gcs_config()
                .is_some_and(|c| c.model == groupsafe_gcs::GcsModel::ViewBased)
        {
            run.run_until(recover_at + SimDuration::from_millis(500));
            reconcile_restart(run.system_mut(), &recovered);
        }
    }

    let end = crash_instant + sc.run_after;
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(3));

    let system = run.system();
    let oracle = system.oracle.borrow();
    let acked = oracle.acked.len();
    let acked_after_crash = oracle
        .acked
        .values()
        .filter(|a| a.at > crash_instant)
        .count();
    let timeouts = oracle.timeouts;
    drop(oracle);
    CrashOutcome {
        acked,
        lost: system.lost_transactions().len(),
        distinct_states: system.convergence().len(),
        acked_after_crash,
        timeouts,
        fingerprint: system.engine.fingerprint(),
    }
}

fn recovering(sc: CrashScenario) -> CrashScenario {
    CrashScenario {
        recovery: RecoveryPlan::Recover {
            downtime: SimDuration::from_millis(400),
        },
        ..sc
    }
}

/// The pinned corpus: every distinct shape the integration suites use.
fn corpus() -> Vec<(&'static str, CrashScenario)> {
    vec![
        (
            "group_safe_minority",
            CrashScenario::small(Technique::Dsm(SafetyLevel::GroupSafe), vec![1, 3], 1),
        ),
        (
            "group_safe_all_but_one",
            CrashScenario::small(Technique::Dsm(SafetyLevel::GroupSafe), vec![0, 1, 2, 3], 3),
        ),
        (
            "group_safe_total_recover",
            recovering(CrashScenario::small(
                Technique::Dsm(SafetyLevel::GroupSafe),
                vec![0, 1, 2, 3, 4],
                5,
            )),
        ),
        (
            "two_safe_total_recover",
            recovering(CrashScenario::small(
                Technique::Dsm(SafetyLevel::TwoSafe),
                vec![0, 1, 2, 3, 4],
                7,
            )),
        ),
        (
            "lazy_delegate_crash_hot",
            CrashScenario {
                load_tps: 40.0,
                ..CrashScenario::small(Technique::Lazy, vec![0], 11)
            },
        ),
        (
            "lazy_survivors",
            CrashScenario::small(Technique::Lazy, vec![0], 13),
        ),
        (
            "zero_safe_partitioned",
            CrashScenario {
                partition_before: vec![0],
                partition_hold: SimDuration::from_millis(1_500),
                ..CrashScenario::small(Technique::Dsm(SafetyLevel::ZeroSafe), vec![0], 17)
            },
        ),
        (
            "group_safe_partitioned",
            CrashScenario {
                partition_before: vec![0],
                partition_hold: SimDuration::from_millis(1_500),
                ..CrashScenario::small(Technique::Dsm(SafetyLevel::GroupSafe), vec![0], 19)
            },
        ),
        (
            "group_one_safe_delegate_last",
            recovering(CrashScenario {
                load_tps: 40.0,
                crash_last: Some((0, SimDuration::from_millis(400))),
                ..CrashScenario::small(
                    Technique::Dsm(SafetyLevel::GroupOneSafe),
                    vec![0, 1, 2, 3, 4],
                    23,
                )
            }),
        ),
        (
            "group_one_safe_delegate_stays_down",
            recovering(CrashScenario {
                load_tps: 40.0,
                crash_last: Some((0, SimDuration::from_millis(400))),
                stay_down: vec![0],
                ..CrashScenario::small(
                    Technique::Dsm(SafetyLevel::GroupOneSafe),
                    vec![0, 1, 2, 3, 4],
                    29,
                )
            }),
        ),
        (
            "very_safe_total_recover",
            CrashScenario {
                load_tps: 10.0,
                recovery: RecoveryPlan::Recover {
                    downtime: SimDuration::from_millis(400),
                },
                ..CrashScenario::small(
                    Technique::Dsm(SafetyLevel::VerySafe),
                    vec![0, 1, 2, 3, 4],
                    67,
                )
            },
        ),
    ]
}

#[test]
fn scenario_engine_reproduces_the_imperative_runs_bit_for_bit() {
    for (label, sc) in corpus() {
        let reference = run_crash_scenario_imperative(&sc);
        let ported = run_crash_scenario(&sc);
        assert_eq!(
            (
                ported.fingerprint,
                ported.acked,
                ported.lost,
                ported.distinct_states,
                ported.acked_after_crash,
                ported.timeouts,
            ),
            (
                reference.fingerprint,
                reference.acked,
                reference.lost,
                reference.distinct_states,
                reference.acked_after_crash,
                reference.timeouts,
            ),
            "{label}: the ScenarioPlan port diverged from the imperative reference"
        );
    }
}

/// The compiled plans are themselves deterministic values: compiling the
/// same `CrashScenario` twice yields the same timeline, and the plan
/// renders a non-empty reproduction dump.
#[test]
fn compiled_plans_are_deterministic_and_renderable() {
    for (label, sc) in corpus() {
        let a = sc.scenario_plan();
        let b = sc.scenario_plan();
        assert_eq!(a, b, "{label}: plan compilation must be deterministic");
        assert!(!a.is_empty(), "{label}: a crash scenario denotes faults");
        assert!(a.render().contains("Crash"), "{label}: {}", a.render());
    }
}
