//! Load-model calibration: the runner must actually deliver the load it
//! claims on the x-axis of Fig. 9.

use groupsafe_core::{SafetyLevel, Technique};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{run, PaperParams, RunConfig};

fn cfg(closed: bool, load: f64, seed: u64) -> RunConfig {
    RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupSafe),
        load_tps: load,
        closed_loop: closed,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: PaperParams::default(),
        shards: 1,
        cross_shard_fraction: 0.0,
        warmup: SimDuration::from_secs(2),
        duration: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(2),
        seed,
    }
}

#[test]
fn open_loop_achieves_offered_load() {
    let r = run(&cfg(false, 24.0, 1));
    let ratio = r.achieved_tps / 24.0;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "open loop must deliver the offered load: achieved {:.1} of 24",
        r.achieved_tps
    );
}

#[test]
fn closed_loop_achieves_target_at_moderate_load() {
    let r = run(&cfg(true, 24.0, 2));
    let ratio = r.achieved_tps / 24.0;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "calibrated closed loop must land near the target: achieved {:.1} of 24",
        r.achieved_tps
    );
}

#[test]
fn closed_loop_self_limits_under_overload() {
    // Group-1-safe at 40 tps is beyond its pipeline capacity: the closed
    // population must saturate below the offered load instead of
    // diverging (this is what bounds the paper's Fig. 9 curve).
    let r = run(&RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupOneSafe),
        ..cfg(true, 40.0, 3)
    });
    assert!(
        r.achieved_tps < 34.0,
        "group-1-safe cannot reach 40 tps (achieved {:.1})",
        r.achieved_tps
    );
    assert!(
        r.mean_ms > 200.0,
        "overload must show up as queueing delay ({:.0} ms)",
        r.mean_ms
    );
    assert_eq!(r.lost, 0);
}
