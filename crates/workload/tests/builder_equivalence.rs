//! The builder must reproduce the pre-builder wiring *bit-for-bit*: the
//! same seed has to yield the same dispatch fingerprint, the same commit
//! count and the same convergence digests as the historical
//! `system_config` + manual-lifecycle path.

#![allow(deprecated)] // the point of this file is to exercise the shims

use groupsafe_core::{SafetyLevel, StopClient, System, Technique};
use groupsafe_sim::{SimDuration, SimTime};
use groupsafe_workload::{builder_for, system_config, table4_generator, PaperParams, RunConfig};

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        load_tps: 12.0,
        closed_loop: false,
        params: PaperParams {
            n_servers: 3,
            clients_per_server: 2,
            ..PaperParams::default()
        },
        warmup: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(6),
        drain: SimDuration::from_secs(2),
        ..RunConfig::paper(Technique::Dsm(SafetyLevel::GroupSafe), 12.0, seed)
    }
}

/// The historical ritual, verbatim: shim config, shim generator, manual
/// warm-up / measure / stop / drain.
fn old_wiring(cfg: &RunConfig) -> (u64, usize, Vec<u64>) {
    let params = cfg.params.clone();
    let mut system = System::build(system_config(cfg), |_| table4_generator(&params));
    system.start();
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);
    let acked = system.oracle.borrow().acked.len();
    (system.engine.fingerprint(), acked, system.convergence())
}

#[test]
fn builder_run_reproduces_the_old_wiring_exactly() {
    for seed in [7, 42, 1234] {
        let c = cfg(seed);
        let (old_fp, old_acked, old_digests) = old_wiring(&c);
        let report = builder_for(&c).build().expect("valid").execute();
        assert_eq!(report.fingerprint, old_fp, "seed {seed}: dispatch diverged");
        assert_eq!(
            report.acked, old_acked,
            "seed {seed}: commit count diverged"
        );
        assert_eq!(report.digests, old_digests, "seed {seed}: states diverged");
    }
}

#[test]
fn closed_loop_paper_config_reproduces_too() {
    let c = RunConfig {
        duration: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(1),
        params: PaperParams {
            n_servers: 3,
            clients_per_server: 2,
            ..PaperParams::default()
        },
        ..RunConfig::paper(Technique::Dsm(SafetyLevel::GroupOneSafe), 8.0, 5)
    };
    let (old_fp, old_acked, old_digests) = old_wiring(&c);
    let report = builder_for(&c).build().expect("valid").execute();
    assert_eq!(report.fingerprint, old_fp);
    assert_eq!(report.acked, old_acked);
    assert_eq!(report.digests, old_digests);
}

#[test]
fn lazy_technique_reproduces_too() {
    let c = cfg(99);
    let c = RunConfig {
        technique: Technique::Lazy,
        ..c
    };
    let (old_fp, old_acked, old_digests) = old_wiring(&c);
    let report = builder_for(&c).build().expect("valid").execute();
    assert_eq!(report.fingerprint, old_fp);
    assert_eq!(report.acked, old_acked);
    assert_eq!(report.digests, old_digests);
}

/// Round trip: the deprecated `system_config` shim and the builder's
/// `to_system_config` denote identical systems — proven by running both
/// through the same manual lifecycle and comparing fingerprints.
#[test]
fn system_config_shim_round_trips_through_the_builder() {
    let c = cfg(31);
    let params = c.params.clone();
    let drive = |config: groupsafe_core::SystemConfig| {
        let mut system = System::build(config, |_| table4_generator(&params));
        system.start();
        let end = SimTime::ZERO + c.warmup + c.duration;
        system.engine.run_until(end);
        let acked = system.oracle.borrow().acked.len();
        (system.engine.fingerprint(), acked)
    };
    let via_shim = drive(system_config(&c));
    let via_builder = drive(builder_for(&c).to_system_config().expect("valid"));
    assert_eq!(via_shim, via_builder);
}

/// `System::builder()` defaults reproduce `SystemConfig::default()`:
/// identical fingerprints for a short default-config run.
#[test]
fn builder_defaults_match_system_config_default_wiring() {
    let spec = groupsafe_core::WorkloadSpec::table4();
    let drive_default = || {
        let mut system = System::build(groupsafe_core::SystemConfig::default(), |_| {
            spec.generator()
        });
        system.start();
        system.engine.run_until(SimTime::from_secs(3));
        let acked = system.oracle.borrow().acked.len();
        (system.engine.fingerprint(), acked)
    };
    let via_builder = {
        let mut run = System::builder().build().expect("defaults are valid");
        run.run_until(SimTime::from_secs(3));
        let system = run.system();
        let acked = system.oracle.borrow().acked.len();
        (system.engine.fingerprint(), acked)
    };
    assert_eq!(drive_default(), via_builder);
}
