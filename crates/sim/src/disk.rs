//! Disk model with the paper's Table 4 parameters.
//!
//! Each access draws a uniform service time (default 4–12 ms, mean 8 ms —
//! the paper's "writing to disk takes around 8 ms"). The disk is a
//! single-server FCFS queue. Sequential batches (the write-caching
//! optimisation that group-safety enables, §5.1: "writes of adjacent pages
//! would also be scheduled together to maximise disk throughput") charge
//! the full service time for the first page and a configurable fraction
//! for each subsequent page.

use rand::rngs::StdRng;
use rand::Rng;

use crate::resource::Fcfs;
use crate::time::{SimDuration, SimTime};

/// Configuration of a simulated disk.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Minimum service time per random access, milliseconds (Table 4: 4 ms).
    pub min_ms: f64,
    /// Maximum service time per random access, milliseconds (Table 4: 12 ms).
    pub max_ms: f64,
    /// Fraction of a full access charged per extra page in a sequential
    /// batch (0.3 ≈ track-neighbour writes; 1.0 disables the optimisation).
    pub sequential_factor: f64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            min_ms: 4.0,
            max_ms: 12.0,
            sequential_factor: 0.3,
        }
    }
}

/// Running totals for a disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Individual random accesses served.
    pub accesses: u64,
    /// Pages written through sequential batches.
    pub batched_pages: u64,
    /// Number of batch operations.
    pub batches: u64,
}

/// A single simulated disk.
#[derive(Debug, Clone)]
pub struct Disk {
    config: DiskConfig,
    queue: Fcfs,
    stats: DiskStats,
    /// Runtime service-time multiplier (1.0 = nominal). Scenario engines
    /// raise it temporarily to model a degraded device (slow-disk window).
    slowdown: f64,
}

impl Disk {
    /// Create a single disk with the given configuration.
    pub fn new(config: DiskConfig) -> Self {
        Disk::pool(config, 1)
    }

    /// Create a pool of `disks` identical disks served FCFS (Table 4
    /// gives each server 2 disks; the pool serves log and data traffic).
    pub fn pool(config: DiskConfig, disks: usize) -> Self {
        Disk {
            config,
            queue: Fcfs::new(disks),
            stats: DiskStats::default(),
            slowdown: 1.0,
        }
    }

    /// Create a disk with the paper's default parameters.
    pub fn paper_default() -> Self {
        Disk::new(DiskConfig::default())
    }

    /// The paper's per-server disk subsystem: a pool of 2 disks.
    pub fn paper_pool() -> Self {
        Disk::pool(DiskConfig::default(), 2)
    }

    fn draw_service(&self, rng: &mut StdRng) -> SimDuration {
        let ms = rng.random_range(self.config.min_ms..=self.config.max_ms);
        SimDuration::from_millis_f64(ms * self.slowdown)
    }

    /// Set the runtime service-time multiplier (1.0 = nominal speed).
    /// Applies to accesses submitted after the call; the RNG stream is
    /// untouched, so a slowed run draws the same service times scaled.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown factor must be positive"
        );
        self.slowdown = factor;
    }

    /// The current service-time multiplier.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// One random access (read or write) submitted at `now`; returns the
    /// completion instant.
    pub fn access(&mut self, now: SimTime, rng: &mut StdRng) -> SimTime {
        self.stats.accesses += 1;
        let service = self.draw_service(rng);
        self.queue.request(now, service)
    }

    /// Write `pages` pages as one sequential batch submitted at `now`;
    /// returns the completion instant. A zero-page batch completes
    /// immediately at the queue head.
    pub fn sequential_batch(&mut self, now: SimTime, pages: usize, rng: &mut StdRng) -> SimTime {
        if pages == 0 {
            return now.max(self.queue.earliest_free());
        }
        self.stats.batches += 1;
        self.stats.batched_pages += pages as u64;
        let first = self.draw_service(rng);
        let extra_ms = first.as_millis_f64() * self.config.sequential_factor * (pages as f64 - 1.0);
        let service = first + SimDuration::from_millis_f64(extra_ms);
        self.queue.request(now, service)
    }

    /// Earliest instant at which the disk is free.
    pub fn earliest_free(&self) -> SimTime {
        self.queue.earliest_free()
    }

    /// Utilisation over `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        self.queue.utilisation(horizon)
    }

    /// Access statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Drop all queued work (crash semantics: in-flight I/O is abandoned).
    pub fn reset(&mut self, now: SimTime) {
        self.queue.reset(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn access_times_are_in_range_and_queue() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut d = Disk::paper_default();
        let t0 = SimTime::ZERO;
        let c1 = d.access(t0, &mut rng);
        let ms = c1.as_millis_f64();
        assert!((4.0..=12.0).contains(&ms), "service {ms}ms out of range");
        // Second access queues behind the first.
        let c2 = d.access(t0, &mut rng);
        assert!(c2 > c1);
        assert!(c2.as_millis_f64() <= 24.0 + 1e-9);
        assert_eq!(d.stats().accesses, 2);
    }

    #[test]
    fn mean_service_is_about_8ms() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = Disk::paper_default();
        let mut t = SimTime::ZERO;
        let n = 2000;
        for _ in 0..n {
            t = d.access(t, &mut rng);
        }
        let mean = t.as_millis_f64() / n as f64;
        assert!(
            (7.5..=8.5).contains(&mean),
            "mean access time {mean}ms, expected ~8ms"
        );
    }

    #[test]
    fn sequential_batch_is_cheaper_than_random() {
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let mut batched = Disk::paper_default();
        let mut random = Disk::paper_default();
        let done_batched = batched.sequential_batch(SimTime::ZERO, 10, &mut rng_a);
        let mut done_random = SimTime::ZERO;
        for _ in 0..10 {
            done_random = random.access(SimTime::ZERO, &mut rng_b);
        }
        assert!(
            done_batched < done_random,
            "batch {done_batched} should beat 10 random accesses {done_random}"
        );
        assert_eq!(batched.stats().batched_pages, 10);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Disk::paper_default();
        assert_eq!(
            d.sequential_batch(SimTime::from_millis(5), 0, &mut rng),
            SimTime::from_millis(5)
        );
        assert_eq!(d.stats().batches, 0);
    }

    #[test]
    fn slowdown_scales_service_times() {
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut nominal = Disk::paper_default();
        let mut slowed = Disk::paper_default();
        slowed.set_slowdown(3.0);
        let a = nominal.access(SimTime::ZERO, &mut rng_a);
        let b = slowed.access(SimTime::ZERO, &mut rng_b);
        assert!(
            (b.as_millis_f64() - 3.0 * a.as_millis_f64()).abs() < 1e-2,
            "same draw, tripled: {a} vs {b}"
        );
        slowed.set_slowdown(1.0);
        assert_eq!(slowed.slowdown(), 1.0);
    }

    #[test]
    #[should_panic(expected = "slowdown factor must be positive")]
    fn invalid_slowdown_rejected() {
        Disk::paper_default().set_slowdown(0.0);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Disk::paper_default();
        d.access(SimTime::ZERO, &mut rng);
        d.reset(SimTime::from_millis(1));
        let c = d.access(SimTime::from_millis(1), &mut rng);
        assert!(c.as_millis_f64() <= 13.0);
    }
}
