//! Simulation metrics: counters and sample histograms.
//!
//! Metrics are keyed by `&'static str` names. Histograms keep raw samples
//! (simulated runs are bounded, so memory stays modest) which makes exact
//! percentiles trivial and avoids bucket-resolution artefacts in the
//! paper-figure reproductions.

use std::collections::BTreeMap;

/// A histogram over `f64` samples with exact quantiles.
///
/// Quantile queries keep the sample vector sorted and remember how much of
/// it is (`sorted_len`); a query after new recordings sorts only the
/// unsorted tail and back-merges it into the sorted prefix, instead of
/// re-sorting the full vector on every `quantile`/`min`/`max` call the
/// reporting loops make.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    /// Length of the sorted prefix of `samples`.
    sorted_len: usize,
    /// Running sum of all samples, maintained at record time so `mean`
    /// and `stddev` are O(1) instead of rescanning inside reporting loops.
    sum: f64,
    /// Running sum of squares (for the O(1) `stddev`).
    sum_sq: f64,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted_len: 0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples (0.0 if empty); maintained at record time.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 if empty). O(1): reads the running sum.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.sum / self.samples.len() as f64
    }

    /// Sample standard deviation (0.0 with fewer than two samples).
    /// O(1): derived from the running sum and sum of squares.
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        // Guard against tiny negative variance from float cancellation.
        let var = ((self.sum_sq - m * m * n as f64) / (n - 1) as f64).max(0.0);
        var.sqrt()
    }

    fn ensure_sorted(&mut self) {
        if self.sorted_len == self.samples.len() {
            return;
        }
        // total_cmp: NaN-free total order, no panic path (a NaN sample
        // would sort last instead of poisoning quantiles).
        let mut tail = self.samples.split_off(self.sorted_len);
        tail.sort_by(f64::total_cmp);
        if self.samples.is_empty() {
            self.samples = tail;
        } else {
            // Back-merge the sorted tail into the sorted prefix: O(tail +
            // displaced-prefix) moves, and the untouched low prefix never
            // moves at all.
            let prefix_len = self.samples.len();
            self.samples.resize(prefix_len + tail.len(), 0.0);
            let mut dst = self.samples.len();
            let mut i = prefix_len;
            let mut j = tail.len();
            while j > 0 {
                dst -= 1;
                if i > 0
                    && self.samples[i - 1].total_cmp(&tail[j - 1]) == std::cmp::Ordering::Greater
                {
                    self.samples[dst] = self.samples[i - 1];
                    i -= 1;
                } else {
                    self.samples[dst] = tail[j - 1];
                    j -= 1;
                }
            }
        }
        self.sorted_len = self.samples.len();
    }

    /// Exact quantile by nearest-rank (`q` in `[0, 1]`; 0.0 if empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Smallest sample (0.0 if empty).
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    /// Largest sample (0.0 if empty).
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a sample into histogram `name` (creating it if absent).
    pub fn record(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Borrow histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutably borrow histogram `name`, creating it if absent.
    pub fn histogram_mut(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.histograms.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [4.0, 8.0, 6.0, 2.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 6.0).abs() < 1e-12);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 10.0);
        assert_eq!(h.quantile(0.5), 6.0);
        assert!((h.stddev() - (10.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.95), 95.0);
        assert_eq!(h.quantile(0.99), 99.0);
        assert_eq!(h.quantile(0.01), 1.0);
    }

    #[test]
    fn interleaved_record_and_quantile() {
        // Regression for the sorted-prefix cache: queries between
        // recordings must see every sample recorded so far, in whatever
        // order the values arrive (including duplicates and values that
        // land inside, below, and above the already-sorted prefix).
        let mut h = Histogram::new();
        let values = [5.0, 1.0, 9.0, 3.0, 3.0, 7.0, 0.5, 9.5, 4.0, 6.0];
        let mut seen: Vec<f64> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            h.record(v);
            seen.push(v);
            seen.sort_by(f64::total_cmp);
            // Interrogate min/median/max after every single record.
            assert_eq!(h.min(), seen[0], "min after {} records", i + 1);
            assert_eq!(h.max(), seen[seen.len() - 1], "max after {} records", i + 1);
            let mid = seen.len().div_ceil(2) - 1;
            assert_eq!(h.quantile(0.5), seen[mid], "median after {} records", i + 1);
            assert_eq!(h.count(), seen.len());
            // The running sum/count must track interleaved recording: mean
            // and stddev stay exact against a fresh rescan at every step.
            let n = seen.len() as f64;
            let mean = seen.iter().sum::<f64>() / n;
            assert!(
                (h.mean() - mean).abs() < 1e-12,
                "mean after {} records",
                i + 1
            );
            assert!((h.sum() - seen.iter().sum::<f64>()).abs() < 1e-12);
            if seen.len() >= 2 {
                let var = seen.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
                assert!(
                    (h.stddev() - var.sqrt()).abs() < 1e-9,
                    "stddev after {} records",
                    i + 1
                );
            }
        }
        // A burst of records with no query in between, then one query.
        for v in [2.5, 8.5, 0.1] {
            h.record(v);
            seen.push(v);
        }
        seen.sort_by(f64::total_cmp);
        assert_eq!(h.min(), 0.1);
        assert_eq!(h.max(), 9.5);
        assert_eq!(h.samples().len(), seen.len());
        // After queries the samples are fully sorted.
        assert_eq!(h.samples(), seen.as_slice());
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.stddev(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn registry_histograms() {
        let mut m = Metrics::new();
        m.record("resp", 10.0);
        m.record("resp", 20.0);
        assert_eq!(m.histogram("resp").unwrap().count(), 2);
        assert_eq!(m.histogram_mut("resp").quantile(1.0), 20.0);
        assert!(m.histogram("nope").is_none());
    }
}
