//! # groupsafe-sim — deterministic discrete-event simulation kernel
//!
//! The substrate for the group-safety reproduction (Wiesmann & Schiper,
//! EDBT 2004). The paper's evaluation runs on a CSIM-style replicated
//! database simulator; this crate is our equivalent: a single-threaded,
//! fully deterministic discrete-event engine with
//!
//! * virtual time ([`SimTime`], [`SimDuration`]),
//! * an actor model with crash/recovery semantics matching the paper's
//!   process model ([`Engine`], [`Actor`], [`Ctx`]),
//! * analytic FCFS queueing resources for CPUs ([`Fcfs`]) and disks
//!   ([`Disk`], Table 4 parameters),
//! * metrics ([`Metrics`], [`Histogram`]) and deterministic structured
//!   observability ([`ObsEvent`], [`Obs`], [`obs`]): typed pipeline
//!   events, a bounded flight recorder, and byte-stable exporters, with
//!   the legacy string [`Trace`] kept as a materialised view.
//!
//! Determinism is a hard invariant: one seed, one dispatch sequence
//! ([`Engine::fingerprint`]), so every experiment in the paper can be
//! replayed bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod engine;
pub mod metrics;
pub mod obs;
pub mod resource;
pub mod time;
pub mod trace;

pub use disk::{Disk, DiskConfig, DiskStats};
pub use engine::{Actor, ActorId, AsAny, Ctx, Engine, Payload, Scheduler};
pub use metrics::{Histogram, Metrics};
pub use obs::{
    decompose_commits, prometheus_snapshot, CommitSpan, Obs, ObsConfig, ObsEvent, ObsMode,
    ObsRecord,
};
pub use resource::Fcfs;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};

/// Downcast a [`Payload`] into one of several event types.
///
/// ```ignore
/// downcast_payload!(payload, {
///     ev: TickEvent => self.on_tick(ctx, ev),
///     ev: StopEvent => self.on_stop(ctx, ev),
/// });
/// ```
///
/// Falls through to a panic naming the actor when no arm matches, which
/// surfaces wiring bugs immediately in tests.
#[macro_export]
macro_rules! downcast_payload {
    ($payload:expr, $name:expr, { $($var:ident : $ty:ty => $body:expr),+ $(,)? }) => {{
        let mut __p: $crate::Payload = $payload;
        loop {
            $(
                __p = match __p.downcast::<$ty>() {
                    Ok(__boxed) => {
                        let $var: $ty = *__boxed;
                        #[allow(clippy::unused_unit)]
                        { $body };
                        break;
                    }
                    Err(__p) => __p,
                };
            )+
            panic!("{}: unhandled event payload", $name);
        }
    }};
}
