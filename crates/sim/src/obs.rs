//! Deterministic structured observability: typed pipeline events, a
//! bounded flight recorder, and byte-stable exporters.
//!
//! This module replaces the stringly [`crate::trace::Trace`] as the
//! canonical event layer. Actors emit typed [`ObsEvent`]s through
//! [`crate::Ctx::emit`]; the kernel stamps them with the actor id and the
//! *simulated* clock only (never wall clock — the GS-D02 lint applies
//! here as everywhere), so the recorded stream is a pure function of the
//! seed and is byte-identical across runs and across schedulers.
//!
//! Three recording modes ([`ObsMode`]):
//!
//! * **Disabled** — `emit` is a single branch; nothing is evaluated or
//!   stored (the zero-cost contract the bench overhead gate pins).
//! * **Ring** — a bounded ring buffer keeps the last *N* events (the
//!   flight recorder appended to oracle-violation repro dumps).
//! * **Stream** — the full event stream is retained in dispatch order,
//!   feeding the per-commit phase decomposition ([`decompose_commits`])
//!   and the exporters ([`Obs::chrome_trace`], [`prometheus_snapshot`]).
//!
//! Recording never touches the dispatch fingerprint, the RNG, or the
//! event queue: enabling any mode leaves the simulation's behaviour
//! bit-for-bit identical (pinned by `tests/obs_off_equivalence.rs`).

use std::collections::{BTreeMap, VecDeque};

use crate::engine::ActorId;
use crate::metrics::Metrics;
use crate::time::SimTime;

/// Default flight-recorder capacity (events retained in [`ObsMode::Ring`]).
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One typed event in the commit / read / recovery lifecycle.
///
/// The taxonomy follows the replication pipeline end to end: client
/// submit → delegate execution → broadcast hand-off → batch flush →
/// sequencing → multicast transmission → stable-log write → vote →
/// uniform delivery → certification → apply → reply → client ack — plus
/// the read path, the cross-group 2PC rounds, view changes / state
/// transfer, and WAL syncs. `Legacy` carries free-form labels from the
/// deprecated string [`crate::Trace`] shim.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A client handed a transaction attempt to its delegate.
    ClientSubmit {
        /// Global transaction id.
        txn: u64,
        /// Attempt number (resubmissions after aborts/timeouts).
        attempt: u32,
    },
    /// The delegate started local execution of a transaction.
    ExecStart {
        /// Global transaction id.
        txn: u64,
    },
    /// A request was forwarded to another server (e.g. delegate hand-off).
    Forward {
        /// Global transaction id.
        txn: u64,
        /// Raw destination server id.
        to: u32,
    },
    /// Local execution finished; the write set enters atomic broadcast.
    BroadcastTxn {
        /// Global transaction id.
        txn: u64,
    },
    /// The sequencer flushed a batch of pending broadcasts into a frame.
    BatchFlush {
        /// Messages packed into the flushed frame.
        size: u32,
    },
    /// The sequencer stamped a frame with its global sequence number.
    Sequence {
        /// Global sequence number assigned.
        seq: u64,
    },
    /// A frame left on the wire towards the group.
    MulticastSend {
        /// Destinations addressed by this transmission.
        fanout: u32,
    },
    /// A replica persisted a frame to its stable log.
    StableWrite {
        /// Global sequence number persisted.
        seq: u64,
    },
    /// A replica voted a frame stable (uniform-delivery quorum input).
    Vote {
        /// Global sequence number voted for.
        seq: u64,
    },
    /// The uniformity condition held; the frame was delivered upward.
    UniformDeliver {
        /// Global sequence number delivered.
        seq: u64,
    },
    /// The database state machine certified a delivered transaction.
    Certify {
        /// Global transaction id.
        txn: u64,
        /// Certification outcome.
        committed: bool,
    },
    /// A replica applied a certified write set to its database.
    Apply {
        /// Global transaction id.
        txn: u64,
    },
    /// The delegate's reply point passed; the response left for the client.
    Reply {
        /// Global transaction id.
        txn: u64,
        /// Replica group of the replying delegate.
        group: u32,
        /// Outcome carried by the reply.
        committed: bool,
    },
    /// The client received the delegate's reply.
    ClientAck {
        /// Global transaction id.
        txn: u64,
        /// Attempt number the reply answers.
        attempt: u32,
        /// Outcome observed by the client.
        committed: bool,
    },
    /// A read-only transaction entered the read path.
    ReadSubmit {
        /// Read request id.
        read: u64,
    },
    /// A replica served (or redirected) a local read.
    ReadServe {
        /// Read request id.
        read: u64,
        /// True when served after a freshness redirect.
        redirected: bool,
    },
    /// The client received the read reply.
    ReadReply {
        /// Read request id.
        read: u64,
    },
    /// Cross-group 2PC: the coordinator sent prepares.
    XgPrepare {
        /// Global transaction id.
        txn: u64,
    },
    /// Cross-group 2PC: a participant group voted.
    XgVote {
        /// Global transaction id.
        txn: u64,
        /// Voting group.
        group: u32,
        /// True for a commit vote.
        commit: bool,
    },
    /// Cross-group 2PC: the coordinator's decision was delivered.
    XgDecision {
        /// Global transaction id.
        txn: u64,
        /// The decision.
        commit: bool,
    },
    /// A group-communication view change completed.
    ViewChange {
        /// New view identifier.
        view: u64,
    },
    /// A joiner installed a state-transfer checkpoint.
    StateTransfer {
        /// Sequence number the installed state covers.
        applied_seq: u64,
    },
    /// A write-ahead-log flush reached stable storage.
    WalSync {
        /// Last stable log sequence number.
        lsn: u64,
    },
    /// The lazy (1-safe) baseline propagated a batch of updates.
    LazyPropagate {
        /// Updates in the propagation batch.
        count: u32,
    },
    /// Free-form label forwarded from the deprecated string trace shim.
    Legacy {
        /// The original label.
        label: String,
    },
}

impl ObsEvent {
    /// The stage name: a stable, Prometheus-safe identifier for the
    /// pipeline stage this event belongs to.
    pub fn stage(&self) -> &'static str {
        match self {
            ObsEvent::ClientSubmit { .. } => "client_submit",
            ObsEvent::ExecStart { .. } => "exec_start",
            ObsEvent::Forward { .. } => "forward",
            ObsEvent::BroadcastTxn { .. } => "broadcast",
            ObsEvent::BatchFlush { .. } => "batch_flush",
            ObsEvent::Sequence { .. } => "sequence",
            ObsEvent::MulticastSend { .. } => "multicast_send",
            ObsEvent::StableWrite { .. } => "stable_write",
            ObsEvent::Vote { .. } => "vote",
            ObsEvent::UniformDeliver { .. } => "uniform_deliver",
            ObsEvent::Certify { .. } => "certify",
            ObsEvent::Apply { .. } => "apply",
            ObsEvent::Reply { .. } => "reply",
            ObsEvent::ClientAck { .. } => "client_ack",
            ObsEvent::ReadSubmit { .. } => "read_submit",
            ObsEvent::ReadServe { .. } => "read_serve",
            ObsEvent::ReadReply { .. } => "read_reply",
            ObsEvent::XgPrepare { .. } => "xg_prepare",
            ObsEvent::XgVote { .. } => "xg_vote",
            ObsEvent::XgDecision { .. } => "xg_decision",
            ObsEvent::ViewChange { .. } => "view_change",
            ObsEvent::StateTransfer { .. } => "state_transfer",
            ObsEvent::WalSync { .. } => "wal_sync",
            ObsEvent::LazyPropagate { .. } => "lazy_propagate",
            ObsEvent::Legacy { .. } => "legacy",
        }
    }

    /// Deterministic one-line rendering: the stage followed by its fields
    /// in declaration order (`stage k=v ...`). Legacy events render their
    /// original label verbatim.
    pub fn render(&self) -> String {
        match self {
            ObsEvent::ClientSubmit { txn, attempt } => {
                format!("client_submit txn={txn} attempt={attempt}")
            }
            ObsEvent::ExecStart { txn } => format!("exec_start txn={txn}"),
            ObsEvent::Forward { txn, to } => format!("forward txn={txn} to={to}"),
            ObsEvent::BroadcastTxn { txn } => format!("broadcast txn={txn}"),
            ObsEvent::BatchFlush { size } => format!("batch_flush size={size}"),
            ObsEvent::Sequence { seq } => format!("sequence seq={seq}"),
            ObsEvent::MulticastSend { fanout } => format!("multicast_send fanout={fanout}"),
            ObsEvent::StableWrite { seq } => format!("stable_write seq={seq}"),
            ObsEvent::Vote { seq } => format!("vote seq={seq}"),
            ObsEvent::UniformDeliver { seq } => format!("uniform_deliver seq={seq}"),
            ObsEvent::Certify { txn, committed } => {
                format!("certify txn={txn} committed={committed}")
            }
            ObsEvent::Apply { txn } => format!("apply txn={txn}"),
            ObsEvent::Reply {
                txn,
                group,
                committed,
            } => format!("reply txn={txn} group={group} committed={committed}"),
            ObsEvent::ClientAck {
                txn,
                attempt,
                committed,
            } => format!("client_ack txn={txn} attempt={attempt} committed={committed}"),
            ObsEvent::ReadSubmit { read } => format!("read_submit read={read}"),
            ObsEvent::ReadServe { read, redirected } => {
                format!("read_serve read={read} redirected={redirected}")
            }
            ObsEvent::ReadReply { read } => format!("read_reply read={read}"),
            ObsEvent::XgPrepare { txn } => format!("xg_prepare txn={txn}"),
            ObsEvent::XgVote { txn, group, commit } => {
                format!("xg_vote txn={txn} group={group} commit={commit}")
            }
            ObsEvent::XgDecision { txn, commit } => {
                format!("xg_decision txn={txn} commit={commit}")
            }
            ObsEvent::ViewChange { view } => format!("view_change view={view}"),
            ObsEvent::StateTransfer { applied_seq } => {
                format!("state_transfer applied_seq={applied_seq}")
            }
            ObsEvent::WalSync { lsn } => format!("wal_sync lsn={lsn}"),
            ObsEvent::LazyPropagate { count } => format!("lazy_propagate count={count}"),
            ObsEvent::Legacy { label } => label.clone(),
        }
    }
}

/// One recorded event: the typed payload stamped with sim time and the
/// emitting actor.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRecord {
    /// Simulated instant of emission.
    pub time: SimTime,
    /// The emitting actor.
    pub actor: ActorId,
    /// The typed event.
    pub event: ObsEvent,
}

impl ObsRecord {
    /// Deterministic one-line rendering (`<nanos> a<actor> <event>`), the
    /// unit of the byte-identical stream/flight-recorder contract.
    pub fn render(&self) -> String {
        format!(
            "{} a{} {}",
            self.time.as_nanos(),
            self.actor.0,
            self.event.render()
        )
    }
}

/// Recording mode of the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Nothing is recorded; `emit` costs one branch.
    Disabled,
    /// Only the bounded flight-recorder ring retains the last-N events.
    Ring,
    /// The full event stream is retained (plus the ring tail).
    Stream,
}

/// Configuration of the observability layer: mode + ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Recording mode.
    pub mode: ObsMode,
    /// Flight-recorder capacity (events; ignored when disabled).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    /// The always-on flight recorder: ring mode at the default capacity.
    fn default() -> Self {
        ObsConfig::ring(DEFAULT_RING_CAPACITY)
    }
}

impl ObsConfig {
    /// No recording at all (the zero-cost mode).
    pub fn disabled() -> Self {
        ObsConfig {
            mode: ObsMode::Disabled,
            ring_capacity: 0,
        }
    }

    /// Flight recorder only, retaining the last `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        ObsConfig {
            mode: ObsMode::Ring,
            ring_capacity: capacity.max(1),
        }
    }

    /// Full stream recording (phase decomposition + exporters).
    pub fn stream() -> Self {
        ObsConfig {
            mode: ObsMode::Stream,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Parse a `GROUPSAFE_OBS`-style profile value: `off`, `ring[:N]`, or
    /// `full[:N]` (`N` = ring capacity). Returns `Ok(None)` for an empty
    /// value (caller keeps its default); malformed values are an error
    /// string the caller wraps into its typed config error.
    pub fn parse(raw: &str) -> Result<Option<ObsConfig>, String> {
        let raw = raw.trim();
        if raw.is_empty() {
            return Ok(None);
        }
        let (mode, cap) = match raw.split_once(':') {
            Some((m, c)) => (m.trim(), Some(c.trim())),
            None => (raw, None),
        };
        let capacity = match cap {
            None => DEFAULT_RING_CAPACITY,
            Some(c) => match c.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => return Err(format!("cannot parse ring capacity {c:?}")),
            },
        };
        if mode.eq_ignore_ascii_case("off") {
            if cap.is_some() {
                return Err("mode `off` takes no ring capacity".to_string());
            }
            return Ok(Some(ObsConfig::disabled()));
        }
        if mode.eq_ignore_ascii_case("ring") {
            return Ok(Some(ObsConfig::ring(capacity)));
        }
        if mode.eq_ignore_ascii_case("full") || mode.eq_ignore_ascii_case("stream") {
            return Ok(Some(ObsConfig {
                mode: ObsMode::Stream,
                ring_capacity: capacity,
            }));
        }
        Err(format!(
            "unknown mode {mode:?} (expected off, ring[:N] or full[:N])"
        ))
    }

    /// The `GROUPSAFE_OBS` environment profile (same shape as
    /// [`ObsConfig::parse`]; unset or empty keeps the caller's default).
    pub fn from_env() -> Result<Option<ObsConfig>, String> {
        match std::env::var("GROUPSAFE_OBS") {
            Ok(raw) => ObsConfig::parse(&raw),
            Err(_) => Ok(None),
        }
    }
}

/// The recording sink owned by the simulation kernel.
///
/// Stamps and stores [`ObsEvent`]s per the configured [`ObsMode`]. All
/// queries are deterministic: events are kept in emission (dispatch)
/// order, and the per-stage counters iterate in name order.
#[derive(Debug)]
pub struct Obs {
    mode: ObsMode,
    ring_capacity: usize,
    stream: Vec<ObsRecord>,
    ring: VecDeque<ObsRecord>,
    stages: BTreeMap<&'static str, u64>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ObsConfig::disabled())
    }
}

impl Obs {
    /// Create a sink with the given configuration.
    pub fn new(cfg: ObsConfig) -> Self {
        Obs {
            mode: cfg.mode,
            ring_capacity: cfg.ring_capacity.max(1),
            stream: Vec::new(),
            ring: VecDeque::new(),
            stages: BTreeMap::new(),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// True when any recording is active (`emit` closures are evaluated).
    #[inline]
    pub fn is_active(&self) -> bool {
        !matches!(self.mode, ObsMode::Disabled)
    }

    /// Record one event; `event` is only evaluated when recording is
    /// active (the zero-cost-when-disabled contract).
    #[inline]
    pub fn emit_with(&mut self, time: SimTime, actor: ActorId, event: impl FnOnce() -> ObsEvent) {
        if matches!(self.mode, ObsMode::Disabled) {
            return;
        }
        let record = ObsRecord {
            time,
            actor,
            event: event(),
        };
        *self.stages.entry(record.event.stage()).or_insert(0) += 1;
        if matches!(self.mode, ObsMode::Stream) {
            self.stream.push(record.clone());
        }
        if self.ring.len() == self.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
    }

    /// The full event stream, in emission order (empty unless
    /// [`ObsMode::Stream`]).
    pub fn events(&self) -> &[ObsRecord] {
        &self.stream
    }

    /// The flight-recorder tail: the last-N retained events, oldest first.
    pub fn ring_tail(&self) -> Vec<&ObsRecord> {
        self.ring.iter().collect()
    }

    /// Per-stage emission counters, in stage-name order.
    pub fn stage_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.stages.iter().map(|(k, v)| (*k, *v))
    }

    /// Total events recorded (stream mode) or seen (ring mode).
    pub fn total_recorded(&self) -> u64 {
        self.stages.values().sum()
    }

    /// Render the full stream, one line per event (byte-identical across
    /// runs with the same seed — the determinism contract).
    pub fn render_stream(&self) -> String {
        let mut out = String::new();
        for r in &self.stream {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Render the flight-recorder tail, one line per event.
    pub fn render_tail(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Export the stream as Chrome trace-event JSON (Perfetto-loadable):
    /// one instant event per record, `ts` in microseconds of sim time,
    /// `tid` = actor id. Field order and number formatting are fixed, so
    /// the export is byte-identical across double runs.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, r) in self.stream.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let nanos = r.time.as_nanos();
            // Integer microseconds + 3-digit nanosecond remainder keeps the
            // timestamp exact without float formatting.
            out.push_str(&format!(
                "{{\"name\":{:?},\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}.{:03},\"args\":{{\"detail\":{:?}}}}}",
                r.event.stage(),
                r.actor.0,
                nanos / 1_000,
                nanos % 1_000,
                r.event.render(),
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Export a Prometheus text-format snapshot of the metrics registry plus
/// the obs stage counters. Ordering is the registries' own `BTreeMap`
/// name order and all numbers are formatted deterministically, so double
/// runs produce byte-identical snapshots.
pub fn prometheus_snapshot(metrics: &Metrics, obs: &Obs) -> String {
    fn sanitize(name: &str) -> String {
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let n = sanitize(name);
        out.push_str(&format!(
            "# TYPE groupsafe_{n}_total counter\ngroupsafe_{n}_total {value}\n"
        ));
    }
    let hist_names: Vec<&'static str> = metrics.histogram_names().collect();
    for name in hist_names {
        let Some(h) = metrics.histogram(name) else {
            continue; // unreachable: the name came from the registry itself
        };
        let n = sanitize(name);
        out.push_str(&format!(
            "# TYPE groupsafe_{n} summary\ngroupsafe_{n}_count {}\ngroupsafe_{n}_sum {:.6}\n",
            h.count(),
            h.sum(),
        ));
    }
    out.push_str("# TYPE groupsafe_obs_events_total counter\n");
    for (stage, count) in obs.stage_counts() {
        out.push_str(&format!(
            "groupsafe_obs_events_total{{stage=\"{stage}\"}} {count}\n"
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Phase decomposition
// ---------------------------------------------------------------------

/// Per-commit phase breakdown derived from the event stream: the four
/// consecutive milestones of one successful attempt. The phase durations
/// sum *exactly* to the end-to-end latency because each phase ends where
/// the next begins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitSpan {
    /// Global transaction id.
    pub txn: u64,
    /// Replica group of the replying delegate.
    pub group: u32,
    /// Client submit → delegate execution start (request wire + queueing).
    pub submit_ms: f64,
    /// Execution start → broadcast hand-off (local 2PL execution).
    pub exec_ms: f64,
    /// Broadcast hand-off → reply point (ordering, stability wait,
    /// certification — the safety-level-dependent rump).
    pub commit_ms: f64,
    /// Reply point → client receipt (reply wire).
    pub reply_ms: f64,
}

impl CommitSpan {
    /// End-to-end latency: the sum of the four phases.
    pub fn total_ms(&self) -> f64 {
        self.submit_ms + self.exec_ms + self.commit_ms + self.reply_ms
    }
}

/// Reconstruct per-commit spans from a recorded stream.
///
/// Walks the stream once, tracking the latest `ClientSubmit` /
/// `ExecStart` / `BroadcastTxn` / `Reply` milestone per transaction; a
/// committed `ClientAck` whose milestones are complete and monotone
/// yields one [`CommitSpan`]. Attempts that failed over mid-pipeline
/// (crash, timeout resubmission) simply produce no span.
pub fn decompose_commits(events: &[ObsRecord]) -> Vec<CommitSpan> {
    struct Milestones {
        submit: Option<(SimTime, u32)>,
        exec: Option<SimTime>,
        broadcast: Option<SimTime>,
        reply: Option<(SimTime, u32)>,
    }
    let mut pending: BTreeMap<u64, Milestones> = BTreeMap::new();
    let mut spans = Vec::new();
    let ms = |a: SimTime, b: SimTime| (b.as_nanos() - a.as_nanos()) as f64 / 1_000_000.0;
    for r in events {
        match r.event {
            ObsEvent::ClientSubmit { txn, attempt } => {
                let m = pending.entry(txn).or_insert(Milestones {
                    submit: None,
                    exec: None,
                    broadcast: None,
                    reply: None,
                });
                // A resubmission restarts the span; stale milestones from
                // the failed attempt must not leak into the new one.
                *m = Milestones {
                    submit: Some((r.time, attempt)),
                    exec: None,
                    broadcast: None,
                    reply: None,
                };
            }
            ObsEvent::ExecStart { txn } => {
                if let Some(m) = pending.get_mut(&txn) {
                    m.exec = Some(r.time);
                }
            }
            ObsEvent::BroadcastTxn { txn } => {
                if let Some(m) = pending.get_mut(&txn) {
                    m.broadcast = Some(r.time);
                }
            }
            ObsEvent::Reply {
                txn,
                group,
                committed: true,
            } => {
                if let Some(m) = pending.get_mut(&txn) {
                    m.reply = Some((r.time, group));
                }
            }
            ObsEvent::ClientAck {
                txn,
                attempt,
                committed: true,
            } => {
                let Some(m) = pending.remove(&txn) else {
                    continue;
                };
                let (
                    Some((t_submit, sub_attempt)),
                    Some(t_exec),
                    Some(t_bcast),
                    Some((t_reply, group)),
                ) = (m.submit, m.exec, m.broadcast, m.reply)
                else {
                    continue;
                };
                if sub_attempt != attempt
                    || t_exec < t_submit
                    || t_bcast < t_exec
                    || t_reply < t_bcast
                    || r.time < t_reply
                {
                    continue;
                }
                spans.push(CommitSpan {
                    txn,
                    group,
                    submit_ms: ms(t_submit, t_exec),
                    exec_ms: ms(t_exec, t_bcast),
                    commit_ms: ms(t_bcast, t_reply),
                    reply_ms: ms(t_reply, r.time),
                });
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nanos: u64, actor: u32, event: ObsEvent) -> ObsRecord {
        ObsRecord {
            time: SimTime::from_nanos(nanos),
            actor: ActorId(actor),
            event,
        }
    }

    #[test]
    fn disabled_records_nothing_and_skips_closures() {
        let mut obs = Obs::new(ObsConfig::disabled());
        obs.emit_with(SimTime::ZERO, ActorId(0), || {
            panic!("closure must not run when disabled")
        });
        assert_eq!(obs.total_recorded(), 0);
        assert!(obs.events().is_empty());
        assert!(obs.ring_tail().is_empty());
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut obs = Obs::new(ObsConfig::ring(3));
        for i in 0..10u64 {
            obs.emit_with(SimTime::from_nanos(i), ActorId(0), || ObsEvent::Sequence {
                seq: i,
            });
        }
        let tail = obs.ring_tail();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].event, ObsEvent::Sequence { seq: 7 });
        assert_eq!(tail[2].event, ObsEvent::Sequence { seq: 9 });
        // Ring mode counts everything but retains no stream.
        assert_eq!(obs.total_recorded(), 10);
        assert!(obs.events().is_empty());
    }

    #[test]
    fn stream_retains_everything_in_order() {
        let mut obs = Obs::new(ObsConfig::stream());
        obs.emit_with(SimTime::from_nanos(1), ActorId(1), || ObsEvent::Vote {
            seq: 4,
        });
        obs.emit_with(SimTime::from_nanos(2), ActorId(2), || ObsEvent::Apply {
            txn: 9,
        });
        assert_eq!(obs.events().len(), 2);
        assert_eq!(obs.render_stream(), "1 a1 vote seq=4\n2 a2 apply txn=9\n");
    }

    #[test]
    fn parse_profiles() {
        assert_eq!(ObsConfig::parse("").unwrap(), None);
        assert_eq!(
            ObsConfig::parse("off").unwrap(),
            Some(ObsConfig::disabled())
        );
        assert_eq!(
            ObsConfig::parse("ring:64").unwrap(),
            Some(ObsConfig::ring(64))
        );
        assert_eq!(ObsConfig::parse("full").unwrap(), Some(ObsConfig::stream()));
        assert!(ObsConfig::parse("ring:0").is_err());
        assert!(ObsConfig::parse("off:9").is_err());
        assert!(ObsConfig::parse("sometimes").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let mut obs = Obs::new(ObsConfig::stream());
        obs.emit_with(SimTime::from_nanos(1_234_567), ActorId(3), || {
            ObsEvent::StableWrite { seq: 8 }
        });
        let a = obs.chrome_trace();
        let b = obs.chrome_trace();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"ts\":1234.567"));
        assert!(a.contains("\"tid\":3"));
        assert!(a.trim_end().ends_with("]}"));
    }

    #[test]
    fn prometheus_snapshot_lists_stages_in_order() {
        let mut obs = Obs::new(ObsConfig::ring(8));
        obs.emit_with(SimTime::ZERO, ActorId(0), || ObsEvent::Vote { seq: 1 });
        obs.emit_with(SimTime::ZERO, ActorId(0), || ObsEvent::Apply { txn: 1 });
        obs.emit_with(SimTime::ZERO, ActorId(0), || ObsEvent::Vote { seq: 2 });
        let mut m = Metrics::new();
        m.incr("commits");
        m.record("resp_ms", 4.0);
        let snap = prometheus_snapshot(&m, &obs);
        assert!(snap.contains("groupsafe_commits_total 1\n"));
        assert!(snap.contains("groupsafe_resp_ms_count 1\n"));
        assert!(snap.contains("groupsafe_obs_events_total{stage=\"apply\"} 1\n"));
        assert!(snap.contains("groupsafe_obs_events_total{stage=\"vote\"} 2\n"));
        // apply sorts before vote (BTreeMap order).
        let apply_at = snap.find("stage=\"apply\"").unwrap();
        let vote_at = snap.find("stage=\"vote\"").unwrap();
        assert!(apply_at < vote_at);
    }

    #[test]
    fn decompose_reconciles_with_end_to_end() {
        let events = vec![
            rec(1_000_000, 9, ObsEvent::ClientSubmit { txn: 7, attempt: 0 }),
            rec(3_000_000, 0, ObsEvent::ExecStart { txn: 7 }),
            rec(8_000_000, 0, ObsEvent::BroadcastTxn { txn: 7 }),
            rec(
                20_000_000,
                0,
                ObsEvent::Reply {
                    txn: 7,
                    group: 0,
                    committed: true,
                },
            ),
            rec(
                22_000_000,
                9,
                ObsEvent::ClientAck {
                    txn: 7,
                    attempt: 0,
                    committed: true,
                },
            ),
        ];
        let spans = decompose_commits(&events);
        assert_eq!(spans.len(), 1);
        let s = spans[0];
        assert_eq!(s.txn, 7);
        assert_eq!(s.group, 0);
        assert!((s.submit_ms - 2.0).abs() < 1e-12);
        assert!((s.exec_ms - 5.0).abs() < 1e-12);
        assert!((s.commit_ms - 12.0).abs() < 1e-12);
        assert!((s.reply_ms - 2.0).abs() < 1e-12);
        assert!((s.total_ms() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn decompose_skips_incomplete_and_restarted_attempts() {
        let events = vec![
            // First attempt dies mid-pipeline; resubmission completes.
            rec(1, 9, ObsEvent::ClientSubmit { txn: 1, attempt: 0 }),
            rec(2, 0, ObsEvent::ExecStart { txn: 1 }),
            rec(10, 9, ObsEvent::ClientSubmit { txn: 1, attempt: 1 }),
            rec(11, 0, ObsEvent::ExecStart { txn: 1 }),
            rec(12, 0, ObsEvent::BroadcastTxn { txn: 1 }),
            rec(
                13,
                0,
                ObsEvent::Reply {
                    txn: 1,
                    group: 2,
                    committed: true,
                },
            ),
            rec(
                14,
                9,
                ObsEvent::ClientAck {
                    txn: 1,
                    attempt: 1,
                    committed: true,
                },
            ),
            // An ack whose milestones never completed produces nothing.
            rec(20, 9, ObsEvent::ClientSubmit { txn: 2, attempt: 0 }),
            rec(
                21,
                9,
                ObsEvent::ClientAck {
                    txn: 2,
                    attempt: 0,
                    committed: true,
                },
            ),
        ];
        let spans = decompose_commits(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].txn, 1);
        assert_eq!(spans[0].group, 2);
    }
}
