//! Queueing resources with analytic FCFS service.
//!
//! A [`Fcfs`] resource has `k` identical servers. A request arriving at
//! `now` with a given service time starts on the earliest-free server and
//! completes at `start + service`; the caller schedules its continuation at
//! the returned completion instant. This is the standard analytic treatment
//! used by the paper's CSIM-style simulator: no preemption, no explicit
//! queue objects, exact FCFS completion times.

use crate::time::{SimDuration, SimTime};

/// A `k`-server first-come-first-served queueing resource.
#[derive(Debug, Clone)]
pub struct Fcfs {
    free_at: Vec<SimTime>,
    busy: SimDuration,
    requests: u64,
    queued: SimDuration,
}

impl Fcfs {
    /// Create a resource with `servers` identical servers (clamped to at
    /// least one — a zero-server resource cannot serve anything).
    pub fn new(servers: usize) -> Self {
        Fcfs {
            free_at: vec![SimTime::ZERO; servers.max(1)],
            busy: SimDuration::ZERO,
            requests: 0,
            queued: SimDuration::ZERO,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submit a request at `now` needing `service` time; returns the
    /// completion instant.
    pub fn request(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let Some(slot) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
        else {
            // A zero-server resource serves instantly: degenerate but
            // total (`new` clamps server counts to >= 1, so this arm is
            // unreachable through the public constructor).
            return now + service;
        };
        let start = self.free_at[slot].max(now);
        let end = start + service;
        self.free_at[slot] = end;
        self.busy += service;
        self.queued += start - now;
        self.requests += 1;
        end
    }

    /// Earliest instant at which some server is free (backlog probe).
    pub fn earliest_free(&self) -> SimTime {
        self.free_at.iter().min().copied().unwrap_or(SimTime::ZERO)
    }

    /// Total service time granted so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total time requests spent waiting before service.
    pub fn queued_time(&self) -> SimDuration {
        self.queued
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilisation over `[0, horizon]`: busy time / (servers × horizon).
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / (self.servers() as f64 * horizon.as_secs_f64())
    }

    /// Forget all backlog (used when a server crashes: in-flight work dies).
    pub fn reset(&mut self, now: SimTime) {
        for t in &mut self.free_at {
            *t = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn single_server_serialises() {
        let mut r = Fcfs::new(1);
        assert_eq!(r.request(at(0), ms(10)), at(10));
        // Arrives at 5 but server busy until 10: completes at 20.
        assert_eq!(r.request(at(5), ms(10)), at(20));
        // Arrives after idle gap: starts immediately.
        assert_eq!(r.request(at(30), ms(5)), at(35));
        assert_eq!(r.busy_time(), ms(25));
        assert_eq!(r.queued_time(), ms(5));
        assert_eq!(r.requests(), 3);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = Fcfs::new(2);
        assert_eq!(r.request(at(0), ms(10)), at(10));
        assert_eq!(r.request(at(0), ms(10)), at(10));
        // Third request queues behind the earliest-free server.
        assert_eq!(r.request(at(0), ms(10)), at(20));
        assert_eq!(r.earliest_free(), at(10));
    }

    #[test]
    fn utilisation_is_fractional() {
        let mut r = Fcfs::new(2);
        r.request(at(0), ms(10));
        // 10ms busy over 2 servers × 20ms horizon = 0.25.
        assert!((r.utilisation(at(20)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilisation(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut r = Fcfs::new(1);
        r.request(at(0), ms(100));
        r.reset(at(10));
        assert_eq!(r.request(at(10), ms(5)), at(15));
    }

    #[test]
    fn zero_servers_clamped_to_one() {
        let mut r = Fcfs::new(0);
        assert_eq!(r.servers(), 1);
        assert_eq!(r.request(at(0), ms(10)), at(10));
        assert_eq!(r.request(at(0), ms(10)), at(20));
    }
}
