//! Optional execution tracing.
//!
//! Tracing is off by default (the hot path pays only a branch). When
//! enabled, actors can record labelled events which scenario tests and the
//! group-communication property checkers inspect after the run.

use crate::engine::ActorId;
use crate::time::SimTime;

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub time: SimTime,
    /// The actor that recorded it.
    pub actor: ActorId,
    /// Free-form label (producer-defined format).
    pub label: String,
}

/// A sequence of trace entries, recorded only when enabled.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// A trace that ignores all records.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// A trace that records everything.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry; `label` is only evaluated when tracing is on.
    pub fn record(&mut self, time: SimTime, actor: ActorId, label: impl FnOnce() -> String) {
        if self.enabled {
            self.entries.push(TraceEntry {
                time,
                actor,
                label: label(),
            });
        }
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries whose label starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.label.starts_with(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, ActorId(0), || "x".to_string());
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), ActorId(0), || "a:1".to_string());
        t.record(SimTime::from_millis(2), ActorId(1), || "b:2".to_string());
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].label, "a:1");
        assert_eq!(t.with_prefix("b:").count(), 1);
    }
}
