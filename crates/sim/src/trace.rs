//! Legacy string tracing, now a view over the typed observability layer.
//!
//! The stringly `Trace` used to be the kernel's only event record. The
//! typed [`crate::obs`] layer replaced it: actors emit [`crate::ObsEvent`]
//! values via [`crate::Ctx::emit`], and free-form labels recorded through
//! the deprecated [`crate::Ctx::trace`] shim are forwarded as
//! [`crate::ObsEvent::Legacy`]. [`Engine::trace`](crate::Engine::trace)
//! materialises a `Trace` back out of the recorded stream so existing
//! consumers (scheduler-equivalence tests, scenario assertions) keep
//! working unchanged.

use crate::engine::ActorId;
use crate::obs::Obs;
use crate::time::SimTime;

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub time: SimTime,
    /// The actor that recorded it.
    pub actor: ActorId,
    /// Free-form label (producer-defined format). Typed events render as
    /// `stage k=v ...`; legacy labels pass through verbatim.
    pub label: String,
}

/// A sequence of trace entries, recorded only when enabled.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// A trace that ignores all records.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// A trace that records everything.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// Materialise a trace from a recorded observability stream: one
    /// entry per [`crate::ObsRecord`], labels rendered deterministically.
    pub fn from_obs(obs: &Obs) -> Self {
        Trace {
            enabled: obs.is_active(),
            entries: obs
                .events()
                .iter()
                .map(|r| TraceEntry {
                    time: r.time,
                    actor: r.actor,
                    label: r.event.render(),
                })
                .collect(),
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry; `label` is only evaluated when tracing is on.
    #[deprecated(
        since = "0.2.0",
        note = "emit typed events via `Ctx::emit`; string labels forward into `ObsEvent::Legacy`"
    )]
    pub fn record(&mut self, time: SimTime, actor: ActorId, label: impl FnOnce() -> String) {
        if self.enabled {
            self.entries.push(TraceEntry {
                time,
                actor,
                label: label(),
            });
        }
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries whose label starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.label.starts_with(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsConfig, ObsEvent};

    #[test]
    #[allow(deprecated)]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, ActorId(0), || "x".to_string());
        assert!(t.entries().is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), ActorId(0), || "a:1".to_string());
        t.record(SimTime::from_millis(2), ActorId(1), || "b:2".to_string());
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].label, "a:1");
        assert_eq!(t.with_prefix("b:").count(), 1);
    }

    #[test]
    fn from_obs_renders_typed_and_legacy_alike() {
        let mut obs = Obs::new(ObsConfig::stream());
        obs.emit_with(SimTime::from_millis(1), ActorId(0), || ObsEvent::Vote {
            seq: 3,
        });
        obs.emit_with(SimTime::from_millis(2), ActorId(1), || ObsEvent::Legacy {
            label: "w1:hop2".to_string(),
        });
        let t = Trace::from_obs(&obs);
        assert!(t.is_enabled());
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].label, "vote seq=3");
        assert_eq!(t.entries()[1].label, "w1:hop2");
        assert_eq!(t.with_prefix("w1:").count(), 1);
    }
}
