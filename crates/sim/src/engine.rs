//! The discrete-event simulation engine.
//!
//! The engine is a single-threaded event loop over a priority queue ordered
//! by `(time, sequence-number)`. Determinism is absolute: the same actor
//! graph and seed produce the same dispatch sequence, which the kernel
//! fingerprints with a running FNV-1a hash (see [`Engine::fingerprint`]).
//!
//! # Actors and crashes
//!
//! Simulated components implement [`Actor`]. Every actor carries an
//! *incarnation* counter. Events are stamped with the target's incarnation
//! at scheduling time and silently dropped at dispatch if the target has
//! since crashed (stale timers, in-flight messages to a down node). This
//! implements the paper's §2.4 model: intra-process inter-component
//! messages are reliable *except in case of a crash*, and network messages
//! to a crashed process are lost.
//!
//! Crash and recovery are engine-level control events scheduled with
//! [`Engine::schedule_crash`] / [`Engine::schedule_recover`] (or from
//! within an actor via [`Ctx::crash_me`]). On crash the engine calls
//! [`Actor::on_crash`], where the actor must discard its volatile state
//! while retaining anything it models as stable storage. On recovery the
//! incarnation is bumped and [`Actor::on_recover`] runs the recovery
//! procedure.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifies an actor registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The raw index of this actor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dynamically-typed event payload exchanged between actors.
///
/// Each crate defines its own concrete event structs and downcasts on
/// receipt; see [`crate::downcast_payload`] for the ergonomic helper.
pub type Payload = Box<dyn Any>;

/// A simulated component driven by events.
///
/// The [`AsAny`] supertrait (blanket-implemented for every `'static` type)
/// lets drivers downcast registered actors back to their concrete type via
/// [`Engine::actor`] after a run.
pub trait Actor: AsAny {
    /// Handle an event addressed to this actor.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload);

    /// The actor has crashed: drop all volatile state. State the actor
    /// models as *stable storage* (write-ahead logs, group-communication
    /// message logs) must survive this call.
    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {}

    /// The actor recovers with a fresh incarnation: run its recovery
    /// procedure (read stable storage, rejoin the group, ...).
    fn on_recover(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Human-readable name for traces and error messages.
    fn name(&self) -> &str {
        "actor"
    }
}

/// Sentinel incarnation: deliver whenever the target is alive.
const ANY_INCARNATION: u32 = u32::MAX;

enum EventKind {
    /// Deliver `payload` to `target` if its incarnation still matches
    /// (or matches any incarnation, for driver-injected events).
    Dispatch {
        target: ActorId,
        incarnation: u32,
        payload: Payload,
    },
    /// Crash `target` (idempotent if already down).
    Crash(ActorId),
    /// Recover `target` (idempotent if already up).
    Recover(ActorId),
    /// Stop the run immediately.
    Halt,
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

// Order by (time, seq): the heap is a max-heap so we wrap in `Reverse` at
// the call sites; equality/ordering here only consider the (time, seq) key.
impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Mutable kernel state shared with actors during dispatch via [`Ctx`].
pub struct Kernel {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    incarnations: Vec<u32>,
    alive: Vec<bool>,
    rng: StdRng,
    /// Metrics registry shared by the whole simulation.
    pub metrics: Metrics,
    /// Optional execution trace (disabled by default).
    pub trace: Trace,
    fingerprint: u64,
    dispatched: u64,
    halted: bool,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Kernel {
    fn new(seed: u64) -> Self {
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            incarnations: Vec::new(),
            alive: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            trace: Trace::disabled(),
            fingerprint: FNV_OFFSET,
            dispatched: 0,
            halted: false,
        }
    }

    fn mix(&mut self, v: u64) {
        self.fingerprint ^= v;
        self.fingerprint = self.fingerprint.wrapping_mul(FNV_PRIME);
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { time, seq, kind }));
    }

    fn schedule_dispatch(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let incarnation = self.incarnations[target.index()];
        self.push(
            at,
            EventKind::Dispatch {
                target,
                incarnation,
                payload,
            },
        );
    }
}

/// The context handed to actors while they handle an event.
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    me: ActorId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The id of the actor currently executing.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Schedule `payload` for `target` after `delay`. The event is dropped
    /// if `target` crashes (or crashes and recovers) before it fires.
    pub fn send(&mut self, target: ActorId, delay: SimDuration, payload: impl Any) {
        let at = self.kernel.now + delay;
        self.kernel.schedule_dispatch(at, target, Box::new(payload));
    }

    /// Schedule an event to the executing actor itself (a timer).
    pub fn timer(&mut self, delay: SimDuration, payload: impl Any) {
        self.send(self.me, delay, payload);
    }

    /// True if `target` is currently up.
    pub fn is_alive(&self, target: ActorId) -> bool {
        self.kernel.alive[target.index()]
    }

    /// Crash the executing actor immediately (its `on_crash` runs when the
    /// control event is processed, at the current instant).
    pub fn crash_me(&mut self) {
        let me = self.me;
        self.kernel.push(self.kernel.now, EventKind::Crash(me));
    }

    /// Schedule a crash of `target` after `delay`.
    pub fn schedule_crash(&mut self, target: ActorId, delay: SimDuration) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, EventKind::Crash(target));
    }

    /// Schedule a recovery of `target` after `delay`.
    pub fn schedule_recover(&mut self, target: ActorId, delay: SimDuration) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, EventKind::Recover(target));
    }

    /// Stop the whole simulation at the current instant.
    pub fn halt(&mut self) {
        self.kernel.push(self.kernel.now, EventKind::Halt);
    }

    /// The simulation-wide deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.kernel.rng
    }

    /// Derive an independent deterministic RNG stream (for components that
    /// must not perturb the global stream).
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.kernel.rng.random())
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// Record a trace line (no-op unless tracing is enabled).
    pub fn trace(&mut self, label: impl FnOnce() -> String) {
        let now = self.kernel.now;
        let me = self.me;
        self.kernel.trace.record(now, me, label);
    }
}

/// The simulation engine: actor registry plus kernel.
pub struct Engine {
    actors: Vec<Option<Box<dyn Actor>>>,
    kernel: Kernel,
}

impl Engine {
    /// Create an engine whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            actors: Vec::new(),
            kernel: Kernel::new(seed),
        }
    }

    /// Enable execution tracing (records every dispatch label).
    pub fn enable_trace(&mut self) {
        self.kernel.trace = Trace::enabled();
    }

    /// Register an actor; returns its id. All actors start alive with
    /// incarnation 0.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.kernel.incarnations.push(0);
        self.kernel.alive.push(true);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Schedule `payload` for `target` at absolute time `at` (driver-side
    /// injection, e.g. workload arrivals or scripted scenarios). The event
    /// is dropped if `target` crashes before it fires.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, payload: impl Any) {
        assert!(at >= self.kernel.now, "cannot schedule into the past");
        self.kernel.schedule_dispatch(at, target, Box::new(payload));
    }

    /// Like [`Engine::schedule`], but the event is delivered as long as
    /// `target` is *alive at delivery time*, regardless of intervening
    /// crash/recovery cycles. Use for scripted scenarios that inject work
    /// after a planned recovery.
    pub fn schedule_resilient(&mut self, at: SimTime, target: ActorId, payload: impl Any) {
        assert!(at >= self.kernel.now, "cannot schedule into the past");
        self.kernel.push(
            at,
            EventKind::Dispatch {
                target,
                incarnation: ANY_INCARNATION,
                payload: Box::new(payload),
            },
        );
    }

    /// Schedule a crash of `target` at absolute time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, target: ActorId) {
        self.kernel.push(at, EventKind::Crash(target));
    }

    /// Schedule a recovery of `target` at absolute time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, target: ActorId) {
        self.kernel.push(at, EventKind::Recover(target));
    }

    /// True if `target` is currently up.
    pub fn is_alive(&self, target: ActorId) -> bool {
        self.kernel.alive[target.index()]
    }

    /// Run until the queue drains or `deadline` passes, whichever is first.
    /// Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(ev)) = self.kernel.queue.peek() {
            if ev.time > deadline || self.kernel.halted {
                break;
            }
            let Reverse(ev) = self.kernel.queue.pop().expect("peeked");
            self.process(ev);
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so repeated run_until calls observe monotone time.
        if !self.kernel.halted && deadline > self.kernel.now && deadline != SimTime::MAX {
            self.kernel.now = deadline;
        }
        self.kernel.now
    }

    /// Run until the event queue is empty (or a halt is requested).
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse(ev)) = self.kernel.queue.pop() {
            if self.kernel.halted {
                break;
            }
            self.process(ev);
        }
        self.kernel.now
    }

    fn process(&mut self, ev: QueuedEvent) {
        debug_assert!(ev.time >= self.kernel.now, "time went backwards");
        self.kernel.now = ev.time;
        match ev.kind {
            EventKind::Dispatch {
                target,
                incarnation,
                payload,
            } => {
                let idx = target.index();
                if !self.kernel.alive[idx]
                    || (incarnation != ANY_INCARNATION
                        && self.kernel.incarnations[idx] != incarnation)
                {
                    return; // stale event: target crashed since scheduling
                }
                self.kernel.dispatched += 1;
                self.kernel.mix(ev.time.as_nanos());
                self.kernel.mix(target.0 as u64);
                let mut actor = self.actors[idx].take().expect("actor reentrancy");
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: target,
                };
                actor.on_event(&mut ctx, payload);
                self.actors[idx] = Some(actor);
            }
            EventKind::Crash(target) => {
                let idx = target.index();
                if !self.kernel.alive[idx] {
                    return;
                }
                self.kernel.alive[idx] = false;
                self.kernel.mix(0xDEAD);
                self.kernel.mix(target.0 as u64);
                let mut actor = self.actors[idx].take().expect("actor reentrancy");
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: target,
                };
                actor.on_crash(&mut ctx);
                self.actors[idx] = Some(actor);
            }
            EventKind::Recover(target) => {
                let idx = target.index();
                if self.kernel.alive[idx] {
                    return;
                }
                self.kernel.alive[idx] = true;
                self.kernel.incarnations[idx] += 1;
                self.kernel.mix(0x11FE);
                self.kernel.mix(target.0 as u64);
                let mut actor = self.actors[idx].take().expect("actor reentrancy");
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: target,
                };
                actor.on_recover(&mut ctx);
                self.actors[idx] = Some(actor);
            }
            EventKind::Halt => {
                self.kernel.halted = true;
            }
        }
    }

    /// FNV-1a fingerprint of the dispatch sequence so far. Two runs with the
    /// same seed and inputs must report the same fingerprint (determinism).
    pub fn fingerprint(&self) -> u64 {
        self.kernel.fingerprint
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.kernel.dispatched
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.kernel.metrics
    }

    /// Mutable access to the shared metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.kernel.trace
    }

    /// Borrow a registered actor (e.g. to read results after a run).
    ///
    /// # Panics
    /// Panics if the actor is not of type `T`.
    pub fn actor<T: Actor + 'static>(&self, id: ActorId) -> &T {
        let actor: &dyn Actor = &**self.actors[id.index()].as_ref().expect("actor reentrancy");
        actor
            .as_any()
            .downcast_ref::<T>()
            .expect("actor type mismatch")
    }

    /// Mutably borrow a registered actor.
    ///
    /// # Panics
    /// Panics if the actor is not of type `T`.
    pub fn actor_mut<T: Actor + 'static>(&mut self, id: ActorId) -> &mut T {
        let actor: &mut dyn Actor =
            &mut **self.actors[id.index()].as_mut().expect("actor reentrancy");
        actor
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }
}

/// Object-safe downcast support for [`Actor`] trait objects.
///
/// Blanket-implemented for all sized actors; used by [`Engine::actor`].
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        ticks: u32,
        volatile: u32,
        stable: u32,
        recoveries: u32,
    }

    struct Tick;

    impl Actor for Counter {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.downcast::<Tick>().is_ok() {
                self.ticks += 1;
                self.volatile += 1;
                self.stable += 1;
                if self.ticks < 5 {
                    ctx.timer(SimDuration::from_millis(10), Tick);
                }
            }
        }
        fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
            self.volatile = 0;
        }
        fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
            self.recoveries += 1;
            ctx.timer(SimDuration::from_millis(1), Tick);
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    fn counter() -> Box<Counter> {
        Box::new(Counter {
            ticks: 0,
            volatile: 0,
            stable: 0,
            recoveries: 0,
        })
    }

    #[test]
    fn timers_fire_in_order() {
        let mut eng = Engine::new(1);
        let id = eng.add_actor(counter());
        eng.schedule(SimTime::from_millis(1), id, Tick);
        eng.run_to_completion();
        let c: &Counter = eng.actor(id);
        assert_eq!(c.ticks, 5);
        assert_eq!(eng.now(), SimTime::from_millis(41));
    }

    #[test]
    fn crash_drops_stale_timers_and_recover_bumps_incarnation() {
        let mut eng = Engine::new(1);
        let id = eng.add_actor(counter());
        eng.schedule(SimTime::from_millis(1), id, Tick);
        // Crash at 15ms: ticks at 1ms and 11ms fire; the timer set for 21ms
        // must be dropped. Recover at 50ms restarts ticking.
        eng.schedule_crash(SimTime::from_millis(15), id);
        eng.schedule_recover(SimTime::from_millis(50), id);
        eng.run_to_completion();
        let c: &Counter = eng.actor(id);
        assert_eq!(c.recoveries, 1);
        // 2 ticks before crash + 3 more after recovery (ticks counts to 5).
        assert_eq!(c.ticks, 5);
        // Volatile state was wiped at crash; stable survived.
        assert_eq!(c.volatile, 3);
        assert_eq!(c.stable, 5);
    }

    #[test]
    fn events_to_dead_actor_are_lost() {
        let mut eng = Engine::new(1);
        let id = eng.add_actor(counter());
        eng.schedule_crash(SimTime::from_millis(1), id);
        // Scheduled while alive, arrives while dead: lost.
        eng.schedule(SimTime::from_millis(5), id, Tick);
        eng.run_to_completion();
        let c: &Counter = eng.actor(id);
        assert_eq!(c.ticks, 0);
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let run = |seed| {
            let mut eng = Engine::new(seed);
            let id = eng.add_actor(counter());
            eng.schedule(SimTime::from_millis(1), id, Tick);
            eng.schedule_crash(SimTime::from_millis(15), id);
            eng.schedule_recover(SimTime::from_millis(50), id);
            eng.run_to_completion();
            (eng.fingerprint(), eng.dispatched())
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(7).1, run(9).1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new(1);
        let id = eng.add_actor(counter());
        eng.schedule(SimTime::from_millis(1), id, Tick);
        eng.run_until(SimTime::from_millis(12));
        let c: &Counter = eng.actor(id);
        assert_eq!(c.ticks, 2);
        assert_eq!(eng.now(), SimTime::from_millis(12));
        eng.run_to_completion();
        let c: &Counter = eng.actor(id);
        assert_eq!(c.ticks, 5);
    }

    #[test]
    fn halt_stops_processing() {
        struct Halter;
        struct Go;
        impl Actor for Halter {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, _p: Payload) {
                ctx.halt();
                ctx.timer(SimDuration::from_millis(1), Go);
            }
        }
        let mut eng = Engine::new(1);
        let id = eng.add_actor(Box::new(Halter));
        eng.schedule(SimTime::from_millis(1), id, Go);
        eng.run_to_completion();
        assert_eq!(eng.now(), SimTime::from_millis(1));
    }

    #[test]
    fn double_crash_and_double_recover_are_idempotent() {
        let mut eng = Engine::new(1);
        let id = eng.add_actor(counter());
        eng.schedule_crash(SimTime::from_millis(1), id);
        eng.schedule_crash(SimTime::from_millis(2), id);
        eng.schedule_recover(SimTime::from_millis(3), id);
        eng.schedule_recover(SimTime::from_millis(4), id);
        eng.run_to_completion();
        let c: &Counter = eng.actor(id);
        assert_eq!(c.recoveries, 1);
    }
}
