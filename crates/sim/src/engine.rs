//! The discrete-event simulation engine.
//!
//! The engine is a single-threaded event loop over a priority queue ordered
//! by `(time, sequence-number)`. Determinism is absolute: the same actor
//! graph and seed produce the same dispatch sequence, which the kernel
//! fingerprints with a running FNV-1a hash (see [`Engine::fingerprint`]).
//!
//! # Schedulers
//!
//! Two interchangeable queue implementations back the kernel (selected via
//! [`Scheduler`], see [`Engine::new_with_scheduler`]):
//!
//! * [`Scheduler::TimingWheel`] (the default) — a hierarchical timing wheel
//!   (64 slots × 11 levels over the `u64` nanosecond clock) with per-level
//!   occupancy bitmaps and an event slab with freelist reuse. Insertion and
//!   pop are O(1) amortised; events at the same instant drain in FIFO
//!   (sequence-number) order because slot vectors append in scheduling
//!   order and cascades preserve it.
//! * [`Scheduler::LegacyHeap`] — the original `BinaryHeap` scheduler, kept
//!   as an executable reference. Both produce the identical dispatch order
//!   `(time, seq)` and therefore identical fingerprints; the equivalence is
//!   pinned by unit tests here and a proptest in `tests/`.
//!
//! # Actors and crashes
//!
//! Simulated components implement [`Actor`]. Every actor carries an
//! *incarnation* counter. Events are stamped with the target's incarnation
//! at scheduling time and silently dropped at dispatch if the target has
//! since crashed (stale timers, in-flight messages to a down node). This
//! implements the paper's §2.4 model: intra-process inter-component
//! messages are reliable *except in case of a crash*, and network messages
//! to a crashed process are lost.
//!
//! Crash and recovery are engine-level control events scheduled with
//! [`Engine::schedule_crash`] / [`Engine::schedule_recover`] (or from
//! within an actor via [`Ctx::crash_me`]). On crash the engine calls
//! [`Actor::on_crash`], where the actor must discard its volatile state
//! while retaining anything it models as stable storage. On recovery the
//! incarnation is bumped and [`Actor::on_recover`] runs the recovery
//! procedure.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metrics;
use crate::obs::{Obs, ObsConfig, ObsEvent};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifies an actor registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The raw index of this actor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dynamically-typed event payload exchanged between actors.
///
/// Each crate defines its own concrete event structs and downcasts on
/// receipt; see [`crate::downcast_payload`] for the ergonomic helper.
pub type Payload = Box<dyn Any>;

/// A simulated component driven by events.
///
/// The [`AsAny`] supertrait (blanket-implemented for every `'static` type)
/// lets drivers downcast registered actors back to their concrete type via
/// [`Engine::actor`] after a run.
pub trait Actor: AsAny {
    /// Handle an event addressed to this actor.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload);

    /// The actor has crashed: drop all volatile state. State the actor
    /// models as *stable storage* (write-ahead logs, group-communication
    /// message logs) must survive this call.
    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {}

    /// The actor recovers with a fresh incarnation: run its recovery
    /// procedure (read stable storage, rejoin the group, ...).
    fn on_recover(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Human-readable name for traces and error messages.
    fn name(&self) -> &str {
        "actor"
    }
}

/// Sentinel incarnation: deliver whenever the target is alive.
const ANY_INCARNATION: u32 = u32::MAX;

enum EventKind {
    /// Deliver `payload` to `target` if its incarnation still matches
    /// (or matches any incarnation, for driver-injected events).
    Dispatch {
        target: ActorId,
        incarnation: u32,
        payload: Payload,
    },
    /// Crash `target` (idempotent if already down).
    Crash(ActorId),
    /// Recover `target` (idempotent if already up).
    Recover(ActorId),
    /// Stop the run immediately.
    Halt,
}

/// Selects the event-queue implementation backing the kernel.
///
/// Both schedulers dispatch events in the identical `(time, seq)` order and
/// therefore produce bit-for-bit identical fingerprints and traces; the
/// legacy heap exists as an executable reference for equivalence tests and
/// as a fallback while the wheel bakes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Hierarchical timing wheel + event slab (the default; O(1) amortised).
    #[default]
    TimingWheel,
    /// The original `BinaryHeap<Reverse<QueuedEvent>>` (O(log n) per op).
    LegacyHeap,
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

// Order by (time, seq): the heap is a max-heap so we wrap in `Reverse` at
// the call sites; equality/ordering here only consider the (time, seq) key.
impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Slab of pending event records with freelist reuse: the wheel's slot
/// vectors hold 12-byte `(time, index)` entries instead of full event
/// structs, and record storage is recycled across the run instead of
/// churning the allocator once per event.
#[derive(Default)]
struct EventSlab {
    slots: Vec<Option<EventKind>>,
    free: Vec<u32>,
}

impl EventSlab {
    fn insert(&mut self, kind: EventKind) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(kind);
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Some(kind));
            idx
        }
    }

    fn remove(&mut self, idx: u32) -> EventKind {
        let kind = self.slots[idx as usize].take().expect("slab slot");
        self.free.push(idx);
        kind
    }
}

const WHEEL_BITS: u32 = 6;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS; // 64 slots per level
const WHEEL_LEVELS: usize = 11; // 11 × 6 = 66 bits ≥ the full u64 clock
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// Hierarchical timing wheel over the `u64` nanosecond clock.
///
/// Level `k` partitions time by its `k`-th 6-bit digit; an event lands at
/// the level of the most-significant digit in which its time differs from
/// `horizon` (the wheel's internal clock, always ≤ every queued time).
/// Per-level `u64` occupancy bitmaps make "find earliest slot" a
/// `trailing_zeros`. Advancing the horizon re-distributes ("cascades") one
/// coarse slot into finer levels; each event cascades at most 10 times
/// total, so operations are O(1) amortised.
///
/// Two invariants carry determinism and the deadline contract:
///
/// * **FIFO within an instant.** A queued event's slot always equals its
///   correct slot relative to the *current* horizon (a cascade at level `k`
///   only happens when every finer level is empty, so no event is ever
///   stranded at a stale level). Same-instant events therefore share a slot
///   and append in scheduling (`seq`) order, which cascades preserve.
/// * **Bounded advance.** [`TimingWheel::pop_at_or_before`] never moves
///   `horizon` past `limit`: `run_until(deadline)` sets the kernel clock to
///   `deadline`, and later insertions at `time ≥ deadline` must still
///   satisfy `time ≥ horizon`.
struct TimingWheel {
    horizon: u64,
    occupancy: [u64; WHEEL_LEVELS],
    slots: Vec<Vec<(u64, u32)>>,
    /// FIFO of the instant currently being drained (swapped out of its
    /// slot so same-instant re-schedules refill the slot behind it).
    current: Vec<(u64, u32)>,
    cursor: usize,
}

impl TimingWheel {
    fn new() -> Self {
        TimingWheel {
            horizon: 0,
            occupancy: [0; WHEEL_LEVELS],
            slots: (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| Vec::new())
                .collect(),
            current: Vec::new(),
            cursor: 0,
        }
    }

    fn level_of(&self, time: u64) -> usize {
        let xor = time ^ self.horizon;
        if xor == 0 {
            0
        } else {
            (63 - xor.leading_zeros()) as usize / WHEEL_BITS as usize
        }
    }

    fn file(&mut self, time: u64, idx: u32) {
        let level = self.level_of(time);
        let slot = ((time >> (level as u32 * WHEEL_BITS)) & SLOT_MASK) as usize;
        self.slots[level * WHEEL_SLOTS + slot].push((time, idx));
        self.occupancy[level] |= 1 << slot;
    }

    fn push(&mut self, time: u64, idx: u32) {
        // Defensive clamp: the kernel never schedules below its clock (and
        // the clock never trails the horizon), but a past time here would
        // corrupt the slot invariants rather than merely fire late.
        self.file(time.max(self.horizon), idx);
    }

    /// Pop the earliest event with `time <= limit`, or `None` — without
    /// ever advancing the horizon past `limit`.
    fn pop_at_or_before(&mut self, limit: u64) -> Option<(u64, u32)> {
        loop {
            if self.cursor < self.current.len() {
                let (time, idx) = self.current[self.cursor];
                if time > limit {
                    // Only reachable if a halt abandoned a partial drain.
                    return None;
                }
                self.cursor += 1;
                return Some((time, idx));
            }
            self.current.clear();
            self.cursor = 0;
            if self.occupancy[0] != 0 {
                let slot = self.occupancy[0].trailing_zeros() as u64;
                let time = (self.horizon & !SLOT_MASK) | slot;
                if time > limit {
                    return None;
                }
                self.horizon = time;
                self.occupancy[0] &= !(1 << slot);
                std::mem::swap(&mut self.current, &mut self.slots[slot as usize]);
                continue;
            }
            let level = (1..WHEEL_LEVELS).find(|&k| self.occupancy[k] != 0)?;
            let slot = self.occupancy[level].trailing_zeros() as u64;
            let shift = level as u32 * WHEEL_BITS;
            let high_mask = match shift + WHEEL_BITS {
                64.. => 0,
                above => u64::MAX << above,
            };
            let base = (self.horizon & high_mask) | (slot << shift);
            if base > limit {
                return None;
            }
            self.horizon = base;
            self.occupancy[level] &= !(1 << slot);
            let cascaded = std::mem::take(&mut self.slots[level * WHEEL_SLOTS + slot as usize]);
            for (time, idx) in cascaded {
                self.file(time, idx);
            }
        }
    }
}

/// The kernel's event queue: one of the two [`Scheduler`] implementations.
enum EventQueue {
    Wheel { wheel: TimingWheel, slab: EventSlab },
    Heap(BinaryHeap<Reverse<QueuedEvent>>),
}

impl EventQueue {
    fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::TimingWheel => EventQueue::Wheel {
                wheel: TimingWheel::new(),
                slab: EventSlab::default(),
            },
            Scheduler::LegacyHeap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    fn push(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        match self {
            EventQueue::Wheel { wheel, slab } => {
                let idx = slab.insert(kind);
                wheel.push(time.as_nanos(), idx);
            }
            EventQueue::Heap(heap) => heap.push(Reverse(QueuedEvent { time, seq, kind })),
        }
    }

    /// Pop the earliest event with `time <= limit` in `(time, seq)` order.
    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, EventKind)> {
        match self {
            EventQueue::Wheel { wheel, slab } => {
                let (time, idx) = wheel.pop_at_or_before(limit.as_nanos())?;
                Some((SimTime::from_nanos(time), slab.remove(idx)))
            }
            EventQueue::Heap(heap) => {
                if heap.peek().is_none_or(|Reverse(ev)| ev.time > limit) {
                    return None;
                }
                let Reverse(ev) = heap.pop().expect("peeked");
                Some((ev.time, ev.kind))
            }
        }
    }
}

/// Mutable kernel state shared with actors during dispatch via [`Ctx`].
pub struct Kernel {
    now: SimTime,
    seq: u64,
    queue: EventQueue,
    incarnations: Vec<u32>,
    alive: Vec<bool>,
    rng: StdRng,
    /// Metrics registry shared by the whole simulation.
    pub metrics: Metrics,
    /// Typed observability sink (disabled by default). Recording never
    /// touches the fingerprint, the RNG or the queue: enabling it leaves
    /// the simulation's behaviour bit-for-bit identical.
    pub obs: Obs,
    fingerprint: u64,
    dispatched: u64,
    halted: bool,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Kernel {
    fn new(seed: u64, scheduler: Scheduler) -> Self {
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(scheduler),
            incarnations: Vec::new(),
            alive: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            obs: Obs::default(),
            fingerprint: FNV_OFFSET,
            dispatched: 0,
            halted: false,
        }
    }

    fn mix(&mut self, v: u64) {
        self.fingerprint ^= v;
        self.fingerprint = self.fingerprint.wrapping_mul(FNV_PRIME);
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
    }

    fn schedule_dispatch(&mut self, at: SimTime, target: ActorId, payload: Payload) {
        let incarnation = self.incarnations[target.index()];
        self.push(
            at,
            EventKind::Dispatch {
                target,
                incarnation,
                payload,
            },
        );
    }
}

/// The context handed to actors while they handle an event.
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    me: ActorId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The id of the actor currently executing.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Schedule `payload` for `target` after `delay`. The event is dropped
    /// if `target` crashes (or crashes and recovers) before it fires.
    pub fn send(&mut self, target: ActorId, delay: SimDuration, payload: impl Any) {
        let at = self.kernel.now + delay;
        self.kernel.schedule_dispatch(at, target, Box::new(payload));
    }

    /// Schedule an event to the executing actor itself (a timer).
    pub fn timer(&mut self, delay: SimDuration, payload: impl Any) {
        self.send(self.me, delay, payload);
    }

    /// True if `target` is currently up.
    pub fn is_alive(&self, target: ActorId) -> bool {
        self.kernel.alive[target.index()]
    }

    /// Crash the executing actor immediately (its `on_crash` runs when the
    /// control event is processed, at the current instant).
    pub fn crash_me(&mut self) {
        let me = self.me;
        self.kernel.push(self.kernel.now, EventKind::Crash(me));
    }

    /// Schedule a crash of `target` after `delay`.
    pub fn schedule_crash(&mut self, target: ActorId, delay: SimDuration) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, EventKind::Crash(target));
    }

    /// Schedule a recovery of `target` after `delay`.
    pub fn schedule_recover(&mut self, target: ActorId, delay: SimDuration) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, EventKind::Recover(target));
    }

    /// Stop the whole simulation at the current instant.
    pub fn halt(&mut self) {
        self.kernel.push(self.kernel.now, EventKind::Halt);
    }

    /// The simulation-wide deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.kernel.rng
    }

    /// Derive an independent deterministic RNG stream (for components that
    /// must not perturb the global stream).
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.kernel.rng.random())
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// Emit a typed observability event, stamped with the current sim
    /// time and the executing actor. `event` is only evaluated when
    /// recording is active (single-branch cost otherwise).
    #[inline]
    pub fn emit(&mut self, event: impl FnOnce() -> ObsEvent) {
        let now = self.kernel.now;
        let me = self.me;
        self.kernel.obs.emit_with(now, me, event);
    }

    /// Record a free-form trace label (no-op unless recording is active).
    /// Legacy shim: the label forwards into the typed layer as
    /// [`ObsEvent::Legacy`] — prefer emitting a typed event via
    /// [`Ctx::emit`].
    pub fn trace(&mut self, label: impl FnOnce() -> String) {
        self.emit(|| ObsEvent::Legacy { label: label() });
    }
}

/// The simulation engine: actor registry plus kernel.
pub struct Engine {
    actors: Vec<Option<Box<dyn Actor>>>,
    kernel: Kernel,
}

impl Engine {
    /// Create an engine whose RNG streams derive from `seed`, scheduled by
    /// the default timing wheel.
    pub fn new(seed: u64) -> Self {
        Engine::new_with_scheduler(seed, Scheduler::TimingWheel)
    }

    /// Create an engine with an explicit [`Scheduler`] (equivalence tests
    /// and benchmarks; production callers use [`Engine::new`]).
    pub fn new_with_scheduler(seed: u64, scheduler: Scheduler) -> Self {
        Engine {
            actors: Vec::new(),
            kernel: Kernel::new(seed, scheduler),
        }
    }

    /// Enable full-stream structured recording (sugar for
    /// `set_obs(ObsConfig::stream())`; kept under its historical name for
    /// the trace-consuming tests).
    pub fn enable_trace(&mut self) {
        self.set_obs(ObsConfig::stream());
    }

    /// Configure the observability layer (mode + flight-recorder size).
    /// Replaces any previously recorded events.
    pub fn set_obs(&mut self, cfg: ObsConfig) {
        self.kernel.obs = Obs::new(cfg);
    }

    /// The observability sink (events, flight-recorder tail, exporters).
    pub fn obs(&self) -> &Obs {
        &self.kernel.obs
    }

    /// Register an actor; returns its id. All actors start alive with
    /// incarnation 0.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.kernel.incarnations.push(0);
        self.kernel.alive.push(true);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Schedule `payload` for `target` at absolute time `at` (driver-side
    /// injection, e.g. workload arrivals or scripted scenarios). The event
    /// is dropped if `target` crashes before it fires.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, payload: impl Any) {
        assert!(at >= self.kernel.now, "cannot schedule into the past");
        self.kernel.schedule_dispatch(at, target, Box::new(payload));
    }

    /// Like [`Engine::schedule`], but the event is delivered as long as
    /// `target` is *alive at delivery time*, regardless of intervening
    /// crash/recovery cycles. Use for scripted scenarios that inject work
    /// after a planned recovery.
    pub fn schedule_resilient(&mut self, at: SimTime, target: ActorId, payload: impl Any) {
        assert!(at >= self.kernel.now, "cannot schedule into the past");
        self.kernel.push(
            at,
            EventKind::Dispatch {
                target,
                incarnation: ANY_INCARNATION,
                payload: Box::new(payload),
            },
        );
    }

    /// Schedule a crash of `target` at absolute time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, target: ActorId) {
        self.kernel.push(at, EventKind::Crash(target));
    }

    /// Schedule a recovery of `target` at absolute time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, target: ActorId) {
        self.kernel.push(at, EventKind::Recover(target));
    }

    /// True if `target` is currently up.
    pub fn is_alive(&self, target: ActorId) -> bool {
        self.kernel.alive[target.index()]
    }

    /// Run until the queue drains or `deadline` passes, whichever is first.
    /// Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while !self.kernel.halted {
            let Some((time, kind)) = self.kernel.queue.pop_at_or_before(deadline) else {
                break;
            };
            self.process(time, kind);
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so repeated run_until calls observe monotone time.
        if !self.kernel.halted && deadline > self.kernel.now && deadline != SimTime::MAX {
            self.kernel.now = deadline;
        }
        self.kernel.now
    }

    /// Run until the event queue is empty (or a halt is requested).
    pub fn run_to_completion(&mut self) -> SimTime {
        while !self.kernel.halted {
            let Some((time, kind)) = self.kernel.queue.pop_at_or_before(SimTime::MAX) else {
                break;
            };
            self.process(time, kind);
        }
        self.kernel.now
    }

    fn process(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.kernel.now, "time went backwards");
        self.kernel.now = time;
        match kind {
            EventKind::Dispatch {
                target,
                incarnation,
                payload,
            } => {
                let idx = target.index();
                if !self.kernel.alive[idx]
                    || (incarnation != ANY_INCARNATION
                        && self.kernel.incarnations[idx] != incarnation)
                {
                    return; // stale event: target crashed since scheduling
                }
                self.kernel.dispatched += 1;
                self.kernel.mix(time.as_nanos());
                self.kernel.mix(target.0 as u64);
                let mut actor = self.actors[idx].take().expect("actor reentrancy");
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: target,
                };
                actor.on_event(&mut ctx, payload);
                self.actors[idx] = Some(actor);
            }
            EventKind::Crash(target) => {
                let idx = target.index();
                if !self.kernel.alive[idx] {
                    return;
                }
                self.kernel.alive[idx] = false;
                self.kernel.mix(0xDEAD);
                self.kernel.mix(target.0 as u64);
                let mut actor = self.actors[idx].take().expect("actor reentrancy");
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: target,
                };
                actor.on_crash(&mut ctx);
                self.actors[idx] = Some(actor);
            }
            EventKind::Recover(target) => {
                let idx = target.index();
                if self.kernel.alive[idx] {
                    return;
                }
                self.kernel.alive[idx] = true;
                self.kernel.incarnations[idx] += 1;
                self.kernel.mix(0x11FE);
                self.kernel.mix(target.0 as u64);
                let mut actor = self.actors[idx].take().expect("actor reentrancy");
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: target,
                };
                actor.on_recover(&mut ctx);
                self.actors[idx] = Some(actor);
            }
            EventKind::Halt => {
                self.kernel.halted = true;
            }
        }
    }

    /// FNV-1a fingerprint of the dispatch sequence so far. Two runs with the
    /// same seed and inputs must report the same fingerprint (determinism).
    pub fn fingerprint(&self) -> u64 {
        self.kernel.fingerprint
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.kernel.dispatched
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.kernel.metrics
    }

    /// Mutable access to the shared metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// The recorded trace, materialised from the typed event stream
    /// (empty unless full-stream recording was enabled). Legacy string
    /// labels pass through verbatim; typed events render as
    /// `stage k=v ...`.
    pub fn trace(&self) -> Trace {
        Trace::from_obs(&self.kernel.obs)
    }

    /// Borrow a registered actor (e.g. to read results after a run).
    ///
    /// # Panics
    /// Panics if the actor is not of type `T`.
    pub fn actor<T: Actor + 'static>(&self, id: ActorId) -> &T {
        let actor: &dyn Actor = &**self.actors[id.index()].as_ref().expect("actor reentrancy");
        actor
            .as_any()
            .downcast_ref::<T>()
            .expect("actor type mismatch")
    }

    /// Mutably borrow a registered actor.
    ///
    /// # Panics
    /// Panics if the actor is not of type `T`.
    pub fn actor_mut<T: Actor + 'static>(&mut self, id: ActorId) -> &mut T {
        let actor: &mut dyn Actor =
            &mut **self.actors[id.index()].as_mut().expect("actor reentrancy");
        actor
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }
}

/// Object-safe downcast support for [`Actor`] trait objects.
///
/// Blanket-implemented for all sized actors; used by [`Engine::actor`].
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [Scheduler; 2] = [Scheduler::TimingWheel, Scheduler::LegacyHeap];

    struct Counter {
        ticks: u32,
        volatile: u32,
        stable: u32,
        recoveries: u32,
    }

    struct Tick;

    impl Actor for Counter {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
            if payload.downcast::<Tick>().is_ok() {
                self.ticks += 1;
                self.volatile += 1;
                self.stable += 1;
                if self.ticks < 5 {
                    ctx.timer(SimDuration::from_millis(10), Tick);
                }
            }
        }
        fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
            self.volatile = 0;
        }
        fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
            self.recoveries += 1;
            ctx.timer(SimDuration::from_millis(1), Tick);
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    fn counter() -> Box<Counter> {
        Box::new(Counter {
            ticks: 0,
            volatile: 0,
            stable: 0,
            recoveries: 0,
        })
    }

    #[test]
    fn timers_fire_in_order() {
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(counter());
            eng.schedule(SimTime::from_millis(1), id, Tick);
            eng.run_to_completion();
            let c: &Counter = eng.actor(id);
            assert_eq!(c.ticks, 5);
            assert_eq!(eng.now(), SimTime::from_millis(41));
        }
    }

    #[test]
    fn crash_drops_stale_timers_and_recover_bumps_incarnation() {
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(counter());
            eng.schedule(SimTime::from_millis(1), id, Tick);
            // Crash at 15ms: ticks at 1ms and 11ms fire; the timer set for
            // 21ms must be dropped. Recover at 50ms restarts ticking.
            eng.schedule_crash(SimTime::from_millis(15), id);
            eng.schedule_recover(SimTime::from_millis(50), id);
            eng.run_to_completion();
            let c: &Counter = eng.actor(id);
            assert_eq!(c.recoveries, 1);
            // 2 ticks before crash + 3 more after recovery (ticks counts to 5).
            assert_eq!(c.ticks, 5);
            // Volatile state was wiped at crash; stable survived.
            assert_eq!(c.volatile, 3);
            assert_eq!(c.stable, 5);
        }
    }

    #[test]
    fn events_to_dead_actor_are_lost() {
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(counter());
            eng.schedule_crash(SimTime::from_millis(1), id);
            // Scheduled while alive, arrives while dead: lost.
            eng.schedule(SimTime::from_millis(5), id, Tick);
            eng.run_to_completion();
            let c: &Counter = eng.actor(id);
            assert_eq!(c.ticks, 0);
        }
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let run = |seed, scheduler| {
            let mut eng = Engine::new_with_scheduler(seed, scheduler);
            let id = eng.add_actor(counter());
            eng.schedule(SimTime::from_millis(1), id, Tick);
            eng.schedule_crash(SimTime::from_millis(15), id);
            eng.schedule_recover(SimTime::from_millis(50), id);
            eng.run_to_completion();
            (eng.fingerprint(), eng.dispatched())
        };
        for scheduler in BOTH {
            assert_eq!(run(7, scheduler), run(7, scheduler));
            assert_eq!(run(7, scheduler).1, run(9, scheduler).1);
        }
        // Crash/recover mixing included: both schedulers agree exactly.
        assert_eq!(
            run(7, Scheduler::TimingWheel),
            run(7, Scheduler::LegacyHeap)
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(counter());
            eng.schedule(SimTime::from_millis(1), id, Tick);
            eng.run_until(SimTime::from_millis(12));
            let c: &Counter = eng.actor(id);
            assert_eq!(c.ticks, 2);
            assert_eq!(eng.now(), SimTime::from_millis(12));
            eng.run_to_completion();
            let c: &Counter = eng.actor(id);
            assert_eq!(c.ticks, 5);
        }
    }

    #[test]
    fn run_until_then_schedule_at_deadline() {
        // Regression for the wheel's bounded-advance invariant: run_until
        // moves the kernel clock to the deadline while a far-future event is
        // still queued; scheduling at exactly the deadline afterwards must
        // still dispatch (time ≥ horizon) and in time order.
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(counter());
            // Far-future tick parks an event at a coarse wheel level.
            eng.schedule(SimTime::from_secs(40), id, Tick);
            eng.run_until(SimTime::from_millis(7));
            assert_eq!(eng.now(), SimTime::from_millis(7));
            eng.schedule(SimTime::from_millis(7), id, Tick);
            eng.run_to_completion();
            let c: &Counter = eng.actor(id);
            // Tick at 7ms starts a 5-tick chain; the 40s tick adds one more
            // 5-tick chain (ticks only re-arm while below 5).
            assert_eq!(c.ticks, 6);
        }
    }

    #[test]
    fn same_instant_fifo_across_mixed_horizons() {
        // Events for one instant scheduled from very different distances
        // (coarse wheel levels vs. direct level-0 inserts) must still
        // dispatch in scheduling order.
        struct Recorder {
            got: Vec<u32>,
        }
        struct Tag(u32);
        impl Actor for Recorder {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, payload: Payload) {
                let tag = payload.downcast::<Tag>().expect("tag");
                self.got.push(tag.0);
            }
        }
        let run = |scheduler| {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(Box::new(Recorder { got: Vec::new() }));
            let instant = SimTime::from_secs(3);
            // Scheduled far out (coarse level), then nearer inserts for the
            // same instant, interleaved with an earlier warm-up event that
            // forces horizon advances between the inserts.
            eng.schedule(instant, id, Tag(0));
            eng.schedule(instant, id, Tag(1));
            eng.schedule(SimTime::from_millis(2), id, Tag(99));
            eng.run_until(SimTime::from_millis(10));
            eng.schedule(instant, id, Tag(2));
            eng.run_until(SimTime::from_secs(1));
            eng.schedule(instant, id, Tag(3));
            eng.run_to_completion();
            let r: &Recorder = eng.actor(id);
            (r.got.clone(), eng.fingerprint())
        };
        let (wheel_order, wheel_fp) = run(Scheduler::TimingWheel);
        let (heap_order, heap_fp) = run(Scheduler::LegacyHeap);
        assert_eq!(wheel_order, vec![99, 0, 1, 2, 3]);
        assert_eq!(wheel_order, heap_order);
        assert_eq!(wheel_fp, heap_fp);
    }

    #[test]
    fn wide_timer_spread_crosses_wheel_levels() {
        // Delays from nanoseconds to tens of simulated minutes exercise
        // insertion at many wheel levels and the cascade path; both
        // schedulers must agree on the full dispatch fingerprint.
        struct Spreader {
            fired: u32,
        }
        struct Fire;
        impl Actor for Spreader {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, _payload: Payload) {
                self.fired += 1;
                let step = match self.fired % 5 {
                    0 => SimDuration::from_nanos(1),
                    1 => SimDuration::from_micros(63),
                    2 => SimDuration::from_millis(17),
                    3 => SimDuration::from_secs(2),
                    _ => SimDuration::from_secs(601),
                };
                if self.fired < 64 {
                    ctx.timer(step, Fire);
                }
            }
        }
        let run = |scheduler| {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(Box::new(Spreader { fired: 0 }));
            eng.schedule(SimTime::ZERO, id, Fire);
            eng.run_to_completion();
            (eng.fingerprint(), eng.dispatched(), eng.now())
        };
        let wheel = run(Scheduler::TimingWheel);
        let heap = run(Scheduler::LegacyHeap);
        assert_eq!(wheel.1, 64);
        assert_eq!(wheel, heap);
    }

    #[test]
    fn halt_stops_processing() {
        struct Halter;
        struct Go;
        impl Actor for Halter {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, _p: Payload) {
                ctx.halt();
                ctx.timer(SimDuration::from_millis(1), Go);
            }
        }
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(Box::new(Halter));
            eng.schedule(SimTime::from_millis(1), id, Go);
            eng.run_to_completion();
            assert_eq!(eng.now(), SimTime::from_millis(1));
        }
    }

    #[test]
    fn double_crash_and_double_recover_are_idempotent() {
        for scheduler in BOTH {
            let mut eng = Engine::new_with_scheduler(1, scheduler);
            let id = eng.add_actor(counter());
            eng.schedule_crash(SimTime::from_millis(1), id);
            eng.schedule_crash(SimTime::from_millis(2), id);
            eng.schedule_recover(SimTime::from_millis(3), id);
            eng.schedule_recover(SimTime::from_millis(4), id);
            eng.run_to_completion();
            let c: &Counter = eng.actor(id);
            assert_eq!(c.recoveries, 1);
        }
    }
}
