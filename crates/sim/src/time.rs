//! Virtual time for the discrete-event simulation.
//!
//! Time is a monotone `u64` nanosecond counter wrapped in newtypes so that
//! instants ([`SimTime`]) and durations ([`SimDuration`]) cannot be mixed up.
//! Nanosecond resolution comfortably covers the paper's parameter range
//! (0.07 ms network operations up to multi-minute simulated runs).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Build an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Build an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Build an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The instant expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future (callers comparing out-of-order probes rely on this).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional milliseconds (negative clamps to 0).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1.0e6).round() as u64)
    }

    /// Build a duration from fractional seconds (negative clamps to 0).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1.0e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The duration expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(70).as_nanos(), 70_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_millis_f64(0.07).as_nanos(), 70_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis_f64(), 1500.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // Saturating subtraction: an earlier minus a later instant is zero.
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(9),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(8);
        assert_eq!(b.since(a), SimDuration::from_millis(5));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_millis(1) < SimTime::MAX);
        assert!(SimDuration::from_micros(70) < SimDuration::from_millis(1));
    }

    #[test]
    fn negative_float_clamps() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }
}
