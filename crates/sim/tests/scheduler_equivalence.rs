//! Scheduler-equivalence property tests.
//!
//! The timing-wheel scheduler must be observationally identical to the
//! legacy binary-heap scheduler it replaced: for ANY workload and fault
//! plan, both dispatch the same events in the same `(time, seq)` order and
//! therefore produce byte-identical fingerprints and trace logs. These
//! tests drive both kernels with random message storms (delays spanning
//! every wheel level, including same-instant sends) and random crash /
//! recover plans landing on the same tick boundaries as deliveries, then
//! compare fingerprint, dispatch count, and the full trace entry-by-entry.

use groupsafe_sim::{
    downcast_payload, Actor, ActorId, Ctx, Engine, Payload, Scheduler, SimDuration, SimTime,
};
use proptest::prelude::*;
use rand::Rng;

/// A hop-counted message bounced between workers.
struct Hop(u8);

/// A worker that relays hop-counted messages to pseudo-random peers with
/// pseudo-random delays. All randomness comes from the engine RNG, so the
/// behavior is a pure function of the dispatch order — exactly the thing
/// the two schedulers must agree on.
struct Worker {
    id: u32,
    peers: u32,
}

/// Delay palette in nanoseconds: same-instant, within the first wheel
/// level (64 ns), across levels 1-5, and out at the seconds level — so a
/// single run exercises level filing, cascades, and same-tick FIFO.
const DELAYS: [u64; 8] = [0, 1, 63, 900, 64_000, 1_000_000, 16_000_000, 1_000_000_000];

impl Actor for Worker {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        downcast_payload!(payload, self.name(), {
            hop: Hop => {
                let hops = hop.0;
                ctx.trace(|| format!("w{}:hop{}", self.id, hops));
                if hops > 0 {
                    let d = DELAYS[ctx.rng().random_range(0..DELAYS.len())];
                    let target = ActorId(ctx.rng().random_range(0..self.peers));
                    ctx.send(target, SimDuration::from_nanos(d), Hop(hops - 1));
                    if hops.is_multiple_of(3) {
                        // A self-timer at the same instant as the relay
                        // exercises same-tick FIFO between two pushes.
                        ctx.timer(SimDuration::from_nanos(d), Hop(hops / 3));
                    }
                }
            },
        });
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_>) {
        ctx.trace(|| format!("w{}:crash", self.id));
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        ctx.trace(|| format!("w{}:recover", self.id));
        // The fresh incarnation kicks off new work of its own.
        ctx.timer(SimDuration::from_millis(1), Hop(2));
    }

    fn name(&self) -> &str {
        "worker"
    }
}

/// One worker's injected workload and fault plan, all at millisecond tick
/// boundaries so crashes/recoveries land at the very instants messages are
/// being delivered (the incarnation-filtering edge the old kernel handled
/// implicitly through heap ordering).
#[derive(Debug, Clone)]
struct Plan {
    start_ms: u64,
    hops: u8,
    crash_ms: Option<(u64, u64)>,
}

fn run_plan(
    scheduler: Scheduler,
    seed: u64,
    n_workers: u32,
    plans: &[Plan],
) -> (u64, u64, Vec<String>) {
    let mut eng = Engine::new_with_scheduler(seed, scheduler);
    eng.enable_trace();
    for id in 0..n_workers {
        eng.add_actor(Box::new(Worker {
            id,
            peers: n_workers,
        }));
    }
    for (i, p) in plans.iter().enumerate() {
        let target = ActorId(i as u32 % n_workers);
        eng.schedule(SimTime::from_millis(p.start_ms), target, Hop(p.hops));
        if let Some((crash_ms, down_ms)) = p.crash_ms {
            eng.schedule_crash(SimTime::from_millis(crash_ms), target);
            eng.schedule_recover(SimTime::from_millis(crash_ms + down_ms.max(1)), target);
        }
    }
    eng.run_to_completion();
    let trace = eng
        .trace()
        .entries()
        .iter()
        .map(|e| format!("{:?}|{}|{}", e.time, e.actor.0, e.label))
        .collect();
    (eng.fingerprint(), eng.dispatched(), trace)
}

proptest! {
    /// Random storms + fault plans: the wheel and the heap agree on the
    /// fingerprint, the dispatch count, and every single trace entry.
    #[test]
    fn wheel_and_heap_traces_are_identical(
        seed in 0u64..1_000_000,
        n_workers in 1u32..6,
        plans in proptest::collection::vec(
            (0u64..50, 0u8..12, proptest::option::of((1u64..50, 1u64..30))),
            1..8,
        )
    ) {
        let plans: Vec<Plan> = plans
            .into_iter()
            .map(|(start_ms, hops, crash_ms)| Plan { start_ms, hops, crash_ms })
            .collect();
        let heap = run_plan(Scheduler::LegacyHeap, seed, n_workers, &plans);
        let wheel = run_plan(Scheduler::TimingWheel, seed, n_workers, &plans);
        prop_assert_eq!(heap.0, wheel.0, "fingerprint diverged");
        prop_assert_eq!(heap.1, wheel.1, "dispatch count diverged");
        prop_assert_eq!(heap.2.len(), wheel.2.len(), "trace length diverged");
        for (i, (h, w)) in heap.2.iter().zip(wheel.2.iter()).enumerate() {
            prop_assert_eq!(h, w, "trace entry {} diverged", i);
        }
    }

    /// Crash/recover exactly at a delivery tick: events stamped with the
    /// old incarnation are filtered identically by both schedulers, and
    /// the recovered incarnation's own work interleaves identically.
    #[test]
    fn crash_at_tick_boundary_filters_identically(
        seed in 0u64..1_000_000,
        crash_ms in 1u64..20,
        down_ms in 1u64..10,
    ) {
        let plans = vec![
            Plan { start_ms: 0, hops: 10, crash_ms: Some((crash_ms, down_ms)) },
            // A second worker keeps sending into the crash window so some
            // deliveries land on a down / re-incarnated target.
            Plan { start_ms: 0, hops: 11, crash_ms: None },
        ];
        let heap = run_plan(Scheduler::LegacyHeap, seed, 2, &plans);
        let wheel = run_plan(Scheduler::TimingWheel, seed, 2, &plans);
        prop_assert_eq!(heap, wheel);
    }
}
