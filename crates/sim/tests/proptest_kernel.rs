//! Property-based tests for the simulation kernel.

use groupsafe_sim::{Fcfs, Histogram, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// FCFS completions never precede their request and never overlap more
    /// than `k` ways.
    #[test]
    fn fcfs_completions_are_sane(
        servers in 1usize..4,
        jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..60)
    ) {
        let mut r = Fcfs::new(servers);
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        let mut intervals = Vec::new();
        let mut total_service = 0u64;
        for (arrive_us, service_us) in sorted {
            let now = SimTime::from_micros(arrive_us);
            let service = SimDuration::from_micros(service_us);
            let done = r.request(now, service);
            // Completion must cover the full service after arrival.
            prop_assert!(done >= now + service);
            intervals.push((done.as_nanos() - service.as_nanos(), done.as_nanos()));
            total_service += service_us;
        }
        // Busy time equals the sum of service times.
        prop_assert_eq!(r.busy_time().as_nanos(), total_service * 1_000);
        // At no instant do more than `servers` jobs run concurrently:
        // check at every interval start.
        for &(start, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(s, e)| s <= start && start < e)
                .count();
            prop_assert!(
                overlapping <= servers,
                "{overlapping} concurrent jobs on {servers} servers"
            );
        }
    }

    /// Quantiles are monotone in q and bracketed by min/max; the mean lies
    /// between them.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..10)
    ) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let values: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone");
        }
        let (mn, mx) = (h.min(), h.max());
        prop_assert!(values.iter().all(|v| (mn..=mx).contains(v)));
        prop_assert!(h.mean() >= mn - 1e-9 && h.mean() <= mx + 1e-9);
    }

    /// Time arithmetic never panics and preserves ordering.
    #[test]
    fn time_arithmetic_is_total(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_nanos(a);
        let tb = SimTime::from_nanos(b);
        let d = tb.since(ta);
        if b >= a {
            prop_assert_eq!(ta + d, tb);
        } else {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
        prop_assert_eq!(ta.max(tb).since(ta.min(tb)), ta - tb + (tb - ta));
    }
}
