// GS-D05 fixture: float accumulation feeding a fingerprint.
fn fingerprint(samples: &[f64]) -> u64 {
    let mut acc = 0.0;
    for s in samples {
        acc += s * 1.5;
    }
    acc.to_bits()
}

// Floats far from any fingerprint are fine.
fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

// A digest fed by integer state is fine even with a float nearby.
fn digest(state: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for s in state {
        h ^= *s;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
