// GS-D02 fixture: wall-clock reads.
use std::time::Instant;

fn measure() -> u128 {
    let start = Instant::now();
    let end = std::time::SystemTime::now();
    let _ = end;
    start.elapsed().as_nanos()
}
