// GS-P02 fixture: the panic family in protocol code.
fn apply(m: Option<u64>) -> u64 {
    let v = m.unwrap();
    let w = m.expect("present");
    if v != w {
        panic!("diverged");
    }
    match v {
        0 => unreachable!("zero filtered upstream"),
        n => n,
    }
}

fn future() {
    todo!("later")
}

// Typed-error style is fine.
fn apply_checked(m: Option<u64>) -> Result<u64, &'static str> {
    m.ok_or("missing")
}

#[cfg(test)]
mod tests {
    // Panics in test code are fine.
    #[test]
    fn probes() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let _ = v.expect("present");
    }
}
