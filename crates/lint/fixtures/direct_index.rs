// GS-P03 fixture: direct indexing in protocol code.
fn pick(v: &[u64], i: usize) -> u64 {
    v[i]
}

fn update(v: &mut Vec<u64>, i: usize) {
    v[i] += 1;
}

// Non-indexing brackets must not fire:
#[derive(Debug)]
struct Wrapper {
    bytes: [u8; 4],
}

fn build() -> Vec<u64> {
    let v = vec![1, 2, 3];
    v
}

fn safe(v: &[u64], i: usize) -> Option<u64> {
    v.get(i).copied()
}
