// GS-D01 fixture: hash collections in replicated state.
use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

struct State {
    committed: HashMap<u64, u64>,
    peers: HashSet<u32>,
    ordered: BTreeMap<u64, u64>, // fine
}

// Mentions in comments must NOT fire: HashMap, HashSet.
fn log_line() {
    let msg = "a HashMap walked into a bar"; // string content must not fire
    let _ = msg;
}
