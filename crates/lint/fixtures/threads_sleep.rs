// GS-D04 fixture: real threads and real sleeps.
fn wait() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
