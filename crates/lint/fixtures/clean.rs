// Control fixture: determinism-respecting, panic-free protocol code.
// Scanning this with a protocol path must produce zero diagnostics.
use std::collections::{BTreeMap, BTreeSet};

struct Replica {
    committed: BTreeMap<u64, u64>,
    peers: BTreeSet<u32>,
}

impl Replica {
    fn apply(&mut self, txn: u64, value: u64) -> Result<(), &'static str> {
        if self.committed.contains_key(&txn) {
            return Err("duplicate");
        }
        self.committed.insert(txn, value);
        Ok(())
    }

    fn lookup(&self, txn: u64) -> Option<u64> {
        self.committed.get(&txn).copied()
    }
}

fn dispatch(msg: GroupMsg) -> Option<u64> {
    match msg {
        GroupMsg::Write { txn, .. } => Some(txn),
        GroupMsg::Decision(_) => None,
    }
}

// Comments may say anything: HashMap, Instant::now(), x.unwrap(), v[i].
fn fingerprint(state: &BTreeMap<u64, u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (k, v) in state {
        h ^= k.wrapping_mul(31).wrapping_add(*v);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
