// GS-D03 fixture: unseeded randomness.
fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn seed_from_os() -> StdRng {
    StdRng::from_entropy()
}
