// GS-P01 fixture: wildcard arms in protocol dispatch.
fn dispatch(msg: GroupMsg) {
    match msg {
        GroupMsg::Write { txn, .. } => apply(txn),
        GroupMsg::Decision(d) => decide(d),
        _ => {} // swallowed: must fire
    }
}

fn dispatch_binding(ev: ScenarioEvent) {
    match ev {
        ScenarioEvent::Crash { at, .. } => crash(at),
        other => ignore(other), // catch-all binding: must fire
    }
}

// Non-protocol enums may use wildcards freely.
fn classify(n: u32) -> &'static str {
    match n {
        0 => "zero",
        _ => "many",
    }
}

// Exhaustive protocol dispatch is fine.
fn exhaustive(r: ServerReply) {
    match r {
        ServerReply::Committed(t) => ack(t),
        ServerReply::Aborted(t) => nack(t),
    }
}

#[cfg(test)]
mod tests {
    // Wildcards in test code are fine.
    fn probe(msg: GroupMsg) -> bool {
        match msg {
            GroupMsg::Write { .. } => true,
            _ => false,
        }
    }
}
