//! The linter's own negative controls: every rule id must demonstrably
//! fire on its fixture, stay silent on the clean control, and respect
//! the test-scope and crate-scope carve-outs. Plus the two workspace
//! gates: the committed tree (with the committed `lint.toml`) audits
//! clean, and the committed `lint.toml` round-trips through the parser.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use groupsafe_lint::{
    apply_allowlist, oracle_coverage, scan_file, scan_workspace, Allowlist, Diagnostic, RuleId,
};

/// Scan fixture `name` as if it lived at `rel` in the workspace.
fn scan_as(name: &str, rel: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut diags = Vec::new();
    scan_file(rel, &text, &mut diags);
    diags
}

const PROTO: &str = "crates/core/src/fixture.rs";

#[test]
fn hash_collections_fixture_fires_gs_d01() {
    let diags = scan_as("hash_collections.rs", PROTO);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::HashCollections)
        .collect();
    // use HashMap, use HashSet, HashMap field, HashSet field — and not
    // the BTreeMap lines, the comment, or the string literal.
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert!(hits.iter().all(|d| d.line <= 8), "{hits:?}");
}

#[test]
fn wall_clock_fixture_fires_gs_d02() {
    let diags = scan_as("wall_clock.rs", PROTO);
    let hits = diags.iter().filter(|d| d.rule == RuleId::WallClock).count();
    assert_eq!(hits, 3); // use Instant, Instant::now, SystemTime::now
}

#[test]
fn os_entropy_fixture_fires_gs_d03() {
    let diags = scan_as("os_entropy.rs", PROTO);
    let hits = diags.iter().filter(|d| d.rule == RuleId::OsEntropy).count();
    assert_eq!(hits, 2); // thread_rng, from_entropy
}

#[test]
fn threads_sleep_fixture_fires_gs_d04() {
    let diags = scan_as("threads_sleep.rs", PROTO);
    assert!(diags.iter().any(|d| d.rule == RuleId::ThreadsSleep));
}

#[test]
fn float_fingerprint_fixture_fires_gs_d05_only_in_fingerprint_scope() {
    let diags = scan_as("float_fingerprint.rs", PROTO);
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::FloatFingerprint)
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 5, "the accumulation inside fn fingerprint");
}

#[test]
fn determinism_rules_skip_the_bench_crate() {
    for fixture in ["wall_clock.rs", "os_entropy.rs", "threads_sleep.rs"] {
        let diags = scan_as(fixture, "crates/bench/src/fixture.rs");
        assert!(diags.is_empty(), "{fixture}: {diags:?}");
    }
}

#[test]
fn determinism_rules_do_apply_to_test_code() {
    // Tests replay too: a HashMap in a test file is still a finding.
    let diags = scan_as("hash_collections.rs", "tests/fixture.rs");
    assert!(diags.iter().any(|d| d.rule == RuleId::HashCollections));
}

#[test]
fn wildcard_dispatch_fixture_fires_gs_p01() {
    let diags = scan_as("wildcard_dispatch.rs", PROTO);
    let hits: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == RuleId::WildcardDispatch)
        .map(|d| d.line)
        .collect();
    // The `_ => {}` arm and the `other =>` catch-all binding — not the
    // integer match, the exhaustive match, or the cfg(test) module.
    assert_eq!(hits, vec![6, 13], "{diags:?}");
}

#[test]
fn panic_freedom_fixture_fires_gs_p02_outside_tests_only() {
    let diags = scan_as("panic_freedom.rs", PROTO);
    let hits: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == RuleId::PanicFreedom)
        .map(|d| d.line)
        .collect();
    // unwrap, expect, panic!, unreachable!, todo! — none from the
    // cfg(test) module at the bottom.
    assert_eq!(hits, vec![3, 4, 6, 9, 15], "{diags:?}");
}

#[test]
fn panic_freedom_does_not_apply_outside_protocol_crates() {
    for rel in [
        "crates/workload/src/fixture.rs",
        "crates/core/tests/fixture.rs",
        "tests/fixture.rs",
    ] {
        let diags = scan_as("panic_freedom.rs", rel);
        assert!(
            !diags.iter().any(|d| d.rule == RuleId::PanicFreedom),
            "{rel}: {diags:?}"
        );
    }
}

#[test]
fn direct_index_fixture_fires_gs_p03() {
    let diags = scan_as("direct_index.rs", PROTO);
    let hits: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == RuleId::DirectIndex)
        .map(|d| d.line)
        .collect();
    // v[i] twice — not the attribute, array type, vec! macro or .get().
    assert_eq!(hits, vec![3, 7], "{diags:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let diags = scan_as("clean.rs", PROTO);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn oracle_coverage_flags_unreferenced_variants() {
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    sources.insert(
        "crates/core/src/scenario.rs".into(),
        "/// Violations.\npub enum OracleViolation {\n    UnexpectedLoss { txn: u64 },\n    Divergence { digests: Vec<u64> },\n}\n"
            .into(),
    );
    sources.insert(
        "tests/negative.rs".into(),
        "fn probe() { let _ = OracleViolation::UnexpectedLoss { txn: 0 }; }\n".into(),
    );
    let mut diags = Vec::new();
    oracle_coverage(&sources, &mut diags);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::OracleCoverage);
    assert!(diags[0].message.contains("Divergence"), "{diags:?}");

    // Referencing the variant in a test clears it.
    sources.insert(
        "tests/negative2.rs".into(),
        "fn probe2() { let _ = stringify!(Divergence); }\n".into(),
    );
    let mut diags = Vec::new();
    oracle_coverage(&sources, &mut diags);
    assert!(diags.is_empty(), "{diags:?}");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// The committed tree, filtered through the committed allowlist, is
/// clean — and the allowlist carries no stale entries. This is the
/// same gate CI runs via `cargo run -p groupsafe-lint`.
#[test]
fn committed_tree_audits_clean() {
    let root = workspace_root();
    let diags = scan_workspace(&root).expect("scan");
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let allow = Allowlist::parse(&text).expect("lint.toml parses");
    let filtered = apply_allowlist(diags, &allow);
    assert!(
        filtered.kept.is_empty(),
        "unallowlisted findings:\n{}",
        filtered
            .kept
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        filtered.unused.is_empty(),
        "stale allowlist entries: {:?}",
        filtered.unused
    );
}

/// The committed allowlist round-trips: parse → render → parse is the
/// identity, and every entry names a real rule and carries a
/// justification (the parser enforces the latter).
#[test]
fn committed_allowlist_round_trips() {
    let text = std::fs::read_to_string(workspace_root().join("lint.toml")).expect("lint.toml");
    let allow = Allowlist::parse(&text).expect("lint.toml parses");
    assert!(!allow.entries.is_empty());
    let again = Allowlist::parse(&allow.render()).expect("rendered form parses");
    assert_eq!(again, allow);
    for e in &allow.entries {
        assert!(
            e.justification.len() >= 20,
            "justification for {e} is too thin to document anything"
        );
    }
}
