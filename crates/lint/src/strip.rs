//! Comment- and string-literal stripping.
//!
//! The scanner works on *code* text: comments and string contents are
//! blanked (replaced by spaces, preserving column positions) so that a
//! banned name inside a doc comment or a log message never fires a
//! rule, and so that brace counting for scope tracking ignores braces
//! in strings. The stripper is a small state machine that persists
//! across lines — block comments, ordinary strings and raw strings all
//! span lines in this codebase.

/// Lexer state carried across lines.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Plain code.
    Code,
    /// Inside `/* ... */`, possibly nested (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"..."` (escapes respected).
    Str,
    /// Inside `r##"..."##` with the given hash count.
    RawStr(u32),
}

/// A streaming comment/string stripper. Feed lines in order; state
/// carries over between calls.
#[derive(Debug)]
pub struct Stripper {
    state: State,
}

impl Default for Stripper {
    fn default() -> Self {
        Stripper::new()
    }
}

impl Stripper {
    /// A fresh stripper at start-of-file.
    pub fn new() -> Self {
        Stripper { state: State::Code }
    }

    /// Return `line` with comments and string/char contents blanked to
    /// spaces. Quote characters themselves are preserved so downstream
    /// heuristics can still see that a string sat there.
    pub fn strip_line(&mut self, line: &str) -> String {
        let b: Vec<char> = line.chars().collect();
        let mut out: Vec<char> = Vec::with_capacity(b.len());
        let mut i = 0usize;
        while i < b.len() {
            match self.state {
                State::BlockComment(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        if depth <= 1 {
                            self.state = State::Code;
                        } else {
                            self.state = State::BlockComment(depth - 1);
                        }
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        self.state = State::BlockComment(depth + 1);
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if b[i] == '\\' {
                        out.push(' ');
                        if i + 1 < b.len() {
                            out.push(' ');
                        }
                        i += 2;
                    } else if b[i] == '"' {
                        out.push('"');
                        i += 1;
                        self.state = State::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if b[i] == '"' && closes_raw(&b, i, hashes) {
                        out.push('"');
                        out.extend(std::iter::repeat_n(' ', hashes as usize));
                        i += 1 + hashes as usize;
                        self.state = State::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        // Line comment: blank the rest of the line.
                        out.extend(std::iter::repeat_n(' ', b.len() - i));
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        self.state = State::BlockComment(1);
                    } else if let Some(hashes) = raw_str_start(&b, i) {
                        // r"..", r#".."#, br".." — skip the prefix.
                        let prefix = raw_prefix_len(&b, i, hashes);
                        out.extend(std::iter::repeat_n(' ', prefix));
                        out.push('"');
                        i += prefix + 1;
                        self.state = State::RawStr(hashes);
                    } else if c == '"' {
                        out.push('"');
                        i += 1;
                        self.state = State::Str;
                    } else if c == '\'' {
                        // Char literal or lifetime. A char literal closes
                        // within a few characters; a lifetime has no
                        // closing quote.
                        if let Some(close) = char_literal_end(&b, i) {
                            out.push('\'');
                            out.extend(std::iter::repeat_n(' ', close - (i + 1)));
                            out.push('\'');
                            i = close + 1;
                        } else {
                            out.push('\'');
                            i += 1;
                        }
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.into_iter().collect()
    }
}

/// Does the `"` at `i` followed by `hashes` `#`s close the raw string?
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// If a raw string starts at `i` (`r`/`br` + hashes + `"`), return the
/// hash count.
fn raw_str_start(b: &[char], i: usize) -> Option<u32> {
    // Must not be the tail of an identifier (`attr` vs `r"..."`).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the raw-string opener before its `"` (the `r`/`br` and
/// hashes).
fn raw_prefix_len(b: &[char], i: usize, hashes: u32) -> usize {
    let br = if b.get(i) == Some(&'b') { 2 } else { 1 };
    br + hashes as usize
}

/// If `'` at `i` opens a char literal, return the index of its closing
/// quote; `None` for lifetimes.
fn char_literal_end(b: &[char], i: usize) -> Option<usize> {
    match b.get(i + 1)? {
        '\\' => {
            // Escaped char: scan for the closing quote (handles \u{..}).
            let mut j = i + 2;
            while j < b.len() && j < i + 12 {
                if b[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        _ => {
            if b.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(s: &str) -> String {
        Stripper::new().strip_line(s)
    }

    #[test]
    fn line_comments_blanked() {
        assert_eq!(
            strip("let x = 1; // HashMap here"),
            "let x = 1;                "
        );
    }

    #[test]
    fn string_contents_blanked() {
        let out = strip(r#"log("uses HashMap inside");"#);
        assert!(!out.contains("HashMap"));
        assert!(out.contains("log("));
        assert_eq!(out.len(), r#"log("uses HashMap inside");"#.len());
    }

    #[test]
    fn escaped_quote_does_not_close() {
        let out = strip(r#"let s = "a\"b"; HashMap"#);
        assert!(out.contains("HashMap"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let mut st = Stripper::new();
        let a = st.strip_line("code(); /* begin HashMap");
        let b = st.strip_line("still HashMap inside */ tail()");
        assert!(!a.contains("HashMap"));
        assert!(!b.contains("HashMap"));
        assert!(b.contains("tail()"));
    }

    #[test]
    fn nested_block_comments() {
        let mut st = Stripper::new();
        st.strip_line("/* outer /* inner */ still comment");
        let out = st.strip_line("HashMap */ code()");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("code()"));
    }

    #[test]
    fn raw_strings() {
        let mut st = Stripper::new();
        let a = st.strip_line(r##"let s = r#"HashMap"#; after"##);
        assert!(!a.contains("HashMap"));
        assert!(a.contains("after"));
    }

    #[test]
    fn char_literal_and_lifetime() {
        let out = strip("let c = '{'; fn f<'a>(x: &'a str) {}");
        // The `{` inside the char literal must be blanked (brace count!).
        assert_eq!(out.matches('{').count(), 1);
        assert!(out.contains("<'a>"));
    }

    #[test]
    fn doc_comment_blanked() {
        let out = strip("/// uses std::thread::sleep for effect");
        assert!(!out.contains("thread"));
    }
}
