//! # groupsafe-lint — the workspace determinism and protocol linter
//!
//! Everything this repository proves — the Tables 2–3 loss oracle,
//! bit-for-bit fuzz replay, the `shards(1)` and batching
//! fingerprint-equivalence locks — rests on replicas being deterministic
//! state machines, as the paper's deferred-update model assumes
//! (Wiesmann & Schiper, EDBT 2004). This crate is the machine-checked
//! contract: a small token/line-level Rust scanner (no external
//! dependencies — the build environment is offline) that walks every
//! `.rs` file in the workspace and reports violations of two rule
//! families:
//!
//! **(a) the determinism contract** — in every non-`bench` crate:
//!
//! * [`RuleId::HashCollections`] (`GS-D01`): `HashMap`/`HashSet` are
//!   banned; their iteration order is seeded per-process, so any
//!   iteration feeding replicated state or a fingerprint diverges
//!   between replicas. The codebase is 100 % `BTreeMap`/`BTreeSet`.
//! * [`RuleId::WallClock`] (`GS-D02`): `std::time::Instant`/`SystemTime`
//!   are banned; simulated time ([`SimTime`]) is the only clock, or a
//!   replay is no longer bit-for-bit.
//! * [`RuleId::OsEntropy`] (`GS-D03`): `thread_rng`, `OsRng` and friends
//!   are banned; every random draw must come from a seeded `StdRng`.
//! * [`RuleId::ThreadsSleep`] (`GS-D04`): `std::thread` (spawn/sleep) is
//!   banned; the simulation is single-threaded by construction.
//! * [`RuleId::FloatFingerprint`] (`GS-D05`): float arithmetic inside
//!   `fingerprint`/`digest` computations is banned; accumulation order
//!   would leak into the equivalence locks.
//!
//! **(b) protocol-dispatch invariants**:
//!
//! * [`RuleId::WildcardDispatch`] (`GS-P01`): no wildcard (`_` or
//!   catch-all binding) arms in `match`es over the protocol enums
//!   (`GroupMsg`, `ServerReply`, `ClientMsg`, `ReadReply`, `Wire`,
//!   `GcsOutput`, `ScenarioEvent`, `OracleViolation`, `ReadViolation`):
//!   a new message variant must be a compile error at every dispatch
//!   site, never silently swallowed.
//! * [`RuleId::PanicFreedom`] (`GS-P02`): `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` are banned in non-test code
//!   of the protocol crates (`gcs`, `core`, `db`, `net`, `sim`);
//!   documented invariant `expect`s live in the `lint.toml` allowlist.
//! * [`RuleId::DirectIndex`] (`GS-P03`): direct slice/`Vec` indexing
//!   (`x[i]`) is banned in the same scope — a panic in a replica is a
//!   correctness bug the paper's model does not have.
//! * [`RuleId::OracleCoverage`] (`GS-P04`): every `OracleViolation`
//!   variant must be referenced by at least one negative-control test
//!   under the root `tests/` directory, so the oracle's teeth are
//!   themselves tested.
//!
//! Documented exceptions are carried by `lint.toml` at the workspace
//! root: every entry names a rule, a file, an optional line/substring
//! anchor, and a mandatory one-line justification (entries without one
//! are a parse error — the policy is enforced mechanically).
//!
//! The simple-pattern subset of these rules is mirrored into
//! `clippy.toml` (`disallowed-types`/`disallowed-methods`) and the
//! workspace lint table, so the compiler enforces what it can and this
//! tool covers what clippy cannot express (test-scope carve-outs,
//! dispatch exhaustiveness, fingerprint float flow, oracle coverage).
//!
//! [`SimTime`]: https://docs.rs/groupsafe-sim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod allowlist;
pub mod json;
pub mod strip;

pub use allowlist::{AllowEntry, Allowlist};

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// The protocol crates: non-test code here must be panic-free — a panic
/// in a replica, a network actor or the kernel is a correctness bug the
/// paper's crash model does not describe.
pub const PROTOCOL_CRATES: [&str; 5] = ["gcs", "core", "db", "net", "sim"];

/// The enums whose dispatch sites must be exhaustive: the wire and
/// protocol messages, the scenario timeline events, and the oracle's
/// violation taxonomy. A `match` naming any of these in an arm pattern
/// must not carry a wildcard arm.
pub const WATCHED_ENUMS: [&str; 9] = [
    "GroupMsg",
    "ServerReply",
    "ClientMsg",
    "ReadReply",
    "Wire",
    "GcsOutput",
    "ScenarioEvent",
    "OracleViolation",
    "ReadViolation",
];

/// One lint rule. The two families are (a) the determinism contract
/// (`GS-D*`) and (b) the protocol invariants (`GS-P*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `GS-D01`: `HashMap`/`HashSet` (iteration-order nondeterminism).
    HashCollections,
    /// `GS-D02`: `std::time::{Instant, SystemTime}` (wall-clock reads).
    WallClock,
    /// `GS-D03`: `thread_rng`/`OsRng`/OS entropy (unseeded randomness).
    OsEntropy,
    /// `GS-D04`: `std::thread` spawn/sleep (scheduling nondeterminism).
    ThreadsSleep,
    /// `GS-D05`: float arithmetic feeding `fingerprint`/digest state.
    FloatFingerprint,
    /// `GS-P01`: wildcard arm in a protocol-enum dispatch `match`.
    WildcardDispatch,
    /// `GS-P02`: `unwrap`/`expect`/`panic!`-family in protocol crates.
    PanicFreedom,
    /// `GS-P03`: direct `x[i]` indexing in protocol crates.
    DirectIndex,
    /// `GS-P04`: an `OracleViolation` variant no `tests/` file exercises.
    OracleCoverage,
}

impl RuleId {
    /// Stable short id (diagnostics, JSON).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::HashCollections => "GS-D01",
            RuleId::WallClock => "GS-D02",
            RuleId::OsEntropy => "GS-D03",
            RuleId::ThreadsSleep => "GS-D04",
            RuleId::FloatFingerprint => "GS-D05",
            RuleId::WildcardDispatch => "GS-P01",
            RuleId::PanicFreedom => "GS-P02",
            RuleId::DirectIndex => "GS-P03",
            RuleId::OracleCoverage => "GS-P04",
        }
    }

    /// Human-readable rule name (also the `rule` key in `lint.toml`).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashCollections => "hash-collections",
            RuleId::WallClock => "wall-clock",
            RuleId::OsEntropy => "os-entropy",
            RuleId::ThreadsSleep => "threads-sleep",
            RuleId::FloatFingerprint => "float-fingerprint",
            RuleId::WildcardDispatch => "wildcard-dispatch",
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::DirectIndex => "direct-index",
            RuleId::OracleCoverage => "oracle-coverage",
        }
    }

    /// Every rule, in report order.
    pub fn all() -> [RuleId; 9] {
        [
            RuleId::HashCollections,
            RuleId::WallClock,
            RuleId::OsEntropy,
            RuleId::ThreadsSleep,
            RuleId::FloatFingerprint,
            RuleId::WildcardDispatch,
            RuleId::PanicFreedom,
            RuleId::DirectIndex,
            RuleId::OracleCoverage,
        ]
    }

    /// Resolve a `lint.toml` rule name.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::all().into_iter().find(|r| r.name() == name)
    }
}

/// Diagnostic severity. Every rule violation is an error; warnings are
/// reserved for meta-findings (stale allowlist entries) that should not
/// fail CI on their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the lint run.
    Error,
    /// Reported but non-fatal.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding: rule, place, message, and the offending source line
/// (trimmed) for context and allowlist `contains` matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Severity (rule violations are errors).
    pub severity: Severity,
    /// What is wrong and why it matters.
    pub message: String,
    /// The offending source line, trimmed (empty for file-level rules).
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}: {}",
            self.path,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.severity,
            self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n    | {}", self.snippet)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------

/// What a file is, as far as rule scoping goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// The owning crate (`"root"` for the workspace package).
    pub crate_name: String,
    /// Whole file is test/bench/example code (a `tests/`, `benches/` or
    /// `examples/` tree): the panic rules do not apply, the determinism
    /// rules still do (test fingerprints must replay too).
    pub test_file: bool,
    /// Non-test source of a protocol crate: panic-freedom and
    /// direct-index apply.
    pub protocol_src: bool,
    /// The bench crate: exempt from the determinism family (wall-clock
    /// progress reporting and throughput timing are its job).
    pub bench: bool,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "root".to_string()
    };
    let test_file = parts
        .iter()
        .take(parts.len().saturating_sub(1))
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    let bench = crate_name == "bench";
    let protocol_src = PROTOCOL_CRATES.contains(&crate_name.as_str())
        && parts.get(2) == Some(&"src")
        && !test_file;
    FileClass {
        crate_name,
        test_file,
        protocol_src,
        bench,
    }
}

// ---------------------------------------------------------------------
// Per-file scanner
// ---------------------------------------------------------------------

/// A `match` block under observation.
struct MatchCtx {
    /// Brace depth of the block's direct arms.
    arms_depth: i32,
    /// Some arm pattern names a watched protocol enum.
    watched: bool,
    /// Wildcard / catch-all arms seen: `(line, snippet)`.
    wildcards: Vec<(usize, String)>,
}

/// Scan one file's source text. `rel` is the workspace-relative path
/// used in diagnostics and for rule scoping.
pub fn scan_file(rel: &str, text: &str, diags: &mut Vec<Diagnostic>) {
    let class = classify(rel);
    let mut stripper = strip::Stripper::new();
    let mut depth: i32 = 0;
    // cfg(test) regions: stack of entry depths; inside while non-empty.
    let mut test_regions: Vec<i32> = Vec::new();
    let mut pending_test_attr = false;
    // fn-name scope for the fingerprint-float rule.
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    // match blocks for the wildcard rule.
    let mut matches: Vec<MatchCtx> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code_owned = stripper.strip_line(raw_line);
        let code = code_owned.as_str();
        let trimmed = code.trim();
        let raw_trimmed = raw_line.trim();
        let depth_before = depth;
        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        depth += opens - closes;

        // ---- cfg(test) tracking --------------------------------------
        if code.contains("cfg(test)") || code.contains("#[test]") || code.contains("cfg(bench)") {
            pending_test_attr = true;
        } else if pending_test_attr && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            if code.contains('{') {
                test_regions.push(depth_before);
            }
            // An attribute-less line without a brace (e.g. a fn signature
            // split over lines) keeps the attr pending until a `{` shows.
            if code.contains('{') || code.contains(';') {
                pending_test_attr = false;
            }
        }
        let in_test = class.test_file || !test_regions.is_empty();

        // ---- fn-name scope -------------------------------------------
        if let Some(name) = parse_fn_name(code) {
            if code.contains('{') {
                fn_stack.push((name, depth_before));
            } else {
                pending_fn = Some(name);
            }
        } else if let Some(name) = pending_fn.take() {
            if code.contains('{') {
                fn_stack.push((name, depth_before));
            } else if !code.contains(';') {
                pending_fn = Some(name); // still inside the signature
            }
        }

        // ---- rule family (a): the determinism contract ---------------
        if !class.bench {
            scan_determinism(rel, line_no, code, raw_trimmed, &fn_stack, diags);
        }

        // ---- rule family (b): panic freedom + indexing ---------------
        if class.protocol_src && !in_test {
            scan_panic_freedom(rel, line_no, code, raw_trimmed, diags);
            scan_direct_index(rel, line_no, code, raw_trimmed, diags);
        }

        // ---- rule family (b): wildcard dispatch ----------------------
        if !in_test {
            scan_match_line(
                rel,
                line_no,
                code,
                trimmed,
                raw_trimmed,
                depth_before,
                &mut matches,
                diags,
            );
        }

        // ---- close scopes whose depth we just left -------------------
        while test_regions.last().is_some_and(|&d| depth <= d) {
            test_regions.pop();
        }
        while fn_stack.last().is_some_and(|&(_, d)| depth <= d) {
            fn_stack.pop();
        }
        while matches.last().is_some_and(|m| depth < m.arms_depth) {
            let ctx = matches.pop().unwrap_or(MatchCtx {
                arms_depth: 0,
                watched: false,
                wildcards: Vec::new(),
            });
            flush_match(rel, raw_line, ctx, diags);
        }
    }
    // EOF closes everything still open (unbalanced files).
    while let Some(ctx) = matches.pop() {
        flush_match(rel, "", ctx, diags);
    }
}

/// Extract the name of a `fn` item declared on this line, if any.
fn parse_fn_name(code: &str) -> Option<String> {
    let i = find_word(code, "fn")?;
    let rest = &code[i + 2..];
    let rest = rest.trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Position of `word` in `code` with identifier boundaries on both
/// sides, or `None`.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

/// Family (a): hash collections, wall clock, entropy, threads, floats
/// feeding fingerprints.
fn scan_determinism(
    rel: &str,
    line_no: usize,
    code: &str,
    trimmed: &str,
    fn_stack: &[(String, i32)],
    diags: &mut Vec<Diagnostic>,
) {
    let push = |diags: &mut Vec<Diagnostic>, rule: RuleId, message: String| {
        diags.push(Diagnostic {
            rule,
            path: rel.to_string(),
            line: line_no,
            severity: Severity::Error,
            message,
            snippet: trimmed.to_string(),
        });
    };
    for ty in ["HashMap", "HashSet"] {
        if has_word(code, ty) {
            push(
                diags,
                RuleId::HashCollections,
                format!(
                    "{ty} iterates in a per-process seeded order; replicated \
                     state and fingerprints must use BTreeMap/BTreeSet"
                ),
            );
        }
    }
    for ty in ["Instant", "SystemTime"] {
        if has_word(code, ty) {
            push(
                diags,
                RuleId::WallClock,
                format!("{ty} reads the wall clock; simulated time (SimTime) is the only clock"),
            );
        }
    }
    for pat in [
        "thread_rng",
        "OsRng",
        "from_entropy",
        "getrandom",
        "from_os_rng",
    ] {
        if has_word(code, pat) {
            push(
                diags,
                RuleId::OsEntropy,
                format!("{pat} draws OS entropy; every draw must come from a seeded StdRng"),
            );
        }
    }
    for pat in ["std::thread", "thread::sleep", "thread::spawn"] {
        if code.contains(pat) {
            push(
                diags,
                RuleId::ThreadsSleep,
                format!(
                    "{pat} introduces scheduling nondeterminism; the simulation is single-threaded"
                ),
            );
        }
    }
    // Floats feeding fingerprint/digest state: inside any function whose
    // name mentions fingerprint/digest, or on a line that touches such an
    // identifier while doing float arithmetic.
    let in_fp_fn = fn_stack
        .iter()
        .any(|(n, _)| n.contains("fingerprint") || n.contains("digest"));
    let mentions_fp = code.contains("fingerprint") || code.contains("digest");
    let floaty = has_word(code, "f32") || has_word(code, "f64") || has_float_literal(code);
    let arithmetic = [
        "+= ", " + ", " - ", " * ", " / ", ".sum", ".fold", ".product",
    ]
    .iter()
    .any(|op| code.contains(op));
    if floaty && arithmetic && (in_fp_fn || mentions_fp) {
        push(
            diags,
            RuleId::FloatFingerprint,
            "float arithmetic feeding a fingerprint/digest: accumulation \
             order would leak into the equivalence locks"
                .to_string(),
        );
    }
}

/// A `1.5`-style float literal (not a range `0..1` or a method call
/// `x.max(y)`).
fn has_float_literal(code: &str) -> bool {
    let b = code.as_bytes();
    (1..b.len().saturating_sub(1)).any(|i| {
        b[i] == b'.'
            && b[i - 1].is_ascii_digit()
            && b[i + 1].is_ascii_digit()
            // not part of `0..9`
            && !(i + 1 < b.len() && b[i + 1] == b'.')
            && !(i >= 1 && b[i - 1] == b'.')
    })
}

/// `GS-P02`: the panic family.
fn scan_panic_freedom(
    rel: &str,
    line_no: usize,
    code: &str,
    trimmed: &str,
    diags: &mut Vec<Diagnostic>,
) {
    const PATTERNS: [(&str, &str); 7] = [
        (".unwrap()", "unwrap() panics on the None/Err path"),
        (".expect(", "expect() panics on the None/Err path"),
        (
            ".unwrap_unchecked(",
            "unwrap_unchecked is UB on the None/Err path",
        ),
        (
            "panic!",
            "panic! aborts the replica outside the crash model",
        ),
        (
            "unreachable!",
            "unreachable! is a runtime panic, not a proof",
        ),
        ("todo!", "todo! panics at runtime"),
        ("unimplemented!", "unimplemented! panics at runtime"),
    ];
    for (pat, why) in PATTERNS {
        if code.contains(pat) {
            diags.push(Diagnostic {
                rule: RuleId::PanicFreedom,
                path: rel.to_string(),
                line: line_no,
                severity: Severity::Error,
                message: format!(
                    "{why}; return a typed error, restructure, or register a \
                     justified invariant in lint.toml"
                ),
                snippet: trimmed.to_string(),
            });
        }
    }
}

/// `GS-P03`: `x[i]` indexing (panics out of bounds). A `[` counts when
/// directly preceded by an identifier character, `)` or `]` — which
/// excludes attributes (`#[..]`), array types (`[u8; 4]`), slice
/// patterns and macros (`vec![..]`).
fn scan_direct_index(
    rel: &str,
    line_no: usize,
    code: &str,
    trimmed: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let b = code.as_bytes();
    let hit = (1..b.len())
        .any(|i| b[i] == b'[' && (is_ident(b[i - 1]) || b[i - 1] == b')' || b[i - 1] == b']'));
    if hit {
        diags.push(Diagnostic {
            rule: RuleId::DirectIndex,
            path: rel.to_string(),
            line: line_no,
            severity: Severity::Error,
            message: "direct indexing panics out of bounds; use .get()/.get_mut() \
                      or register a justified bounds invariant in lint.toml"
                .to_string(),
            snippet: trimmed.to_string(),
        });
    }
}

/// Track `match` blocks and their arms for `GS-P01`.
#[allow(clippy::too_many_arguments)]
fn scan_match_line(
    rel: &str,
    line_no: usize,
    code: &str,
    trimmed: &str,
    raw_trimmed: &str,
    depth_before: i32,
    matches: &mut Vec<MatchCtx>,
    diags: &mut Vec<Diagnostic>,
) {
    // Arm inspection for the innermost open match whose arms live at
    // this line's depth.
    if let Some(ctx) = matches.last_mut() {
        if depth_before == ctx.arms_depth {
            let is_arm = code.contains("=>") || trimmed.starts_with('|');
            if is_arm
                && WATCHED_ENUMS
                    .iter()
                    .any(|e| code.contains(&format!("{e}::")))
            {
                ctx.watched = true;
            }
            if wildcard_arm(trimmed).is_some() {
                ctx.wildcards.push((line_no, raw_trimmed.to_string()));
            }
        }
    }

    if let Some(at) = find_word(code, "match") {
        let after = &code[at..];
        let opens = after.matches('{').count();
        let closes = after.matches('}').count();
        if opens > closes {
            // Multi-line match: arms sit one level inside.
            matches.push(MatchCtx {
                arms_depth: depth_before + (code[..at].matches('{').count() as i32)
                    - (code[..at].matches('}').count() as i32)
                    + 1,
                watched: false,
                wildcards: Vec::new(),
            });
        } else if after.contains("=>") {
            // Single-line match: inspect it directly.
            let watched = WATCHED_ENUMS
                .iter()
                .any(|e| after.contains(&format!("{e}::")));
            let has_wild = after.contains("_ =>") || after.contains("_=>");
            if watched && has_wild {
                diags.push(Diagnostic {
                    rule: RuleId::WildcardDispatch,
                    path: rel.to_string(),
                    line: line_no,
                    severity: Severity::Error,
                    message: "wildcard arm in a protocol-enum match: a new \
                              variant must fail closed at compile time"
                        .to_string(),
                    snippet: raw_trimmed.to_string(),
                });
            }
        }
    }
}

/// Is this line a wildcard / catch-all arm? Returns the snippet.
fn wildcard_arm(trimmed: &str) -> Option<String> {
    if !trimmed.contains("=>") {
        return None;
    }
    let mut t = trimmed;
    if let Some(rest) = t.strip_prefix('|') {
        t = rest.trim_start();
    }
    // Bare `_` (with or without a guard).
    if let Some(rest) = t.strip_prefix('_') {
        if rest
            .chars()
            .next()
            .is_none_or(|c| c.is_whitespace() || c == '=')
        {
            return Some(trimmed.to_string());
        }
    }
    // A lowercase binding used as a catch-all: `other => ...` (not a
    // path, call, struct or binding pattern).
    let ident: String = t
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if !ident.is_empty()
        && ident
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
    {
        let rest = t[ident.len()..].trim_start();
        if rest.starts_with("=>") || rest.starts_with("if ") {
            return Some(trimmed.to_string());
        }
    }
    None
}

fn flush_match(rel: &str, _line: &str, ctx: MatchCtx, diags: &mut Vec<Diagnostic>) {
    if !ctx.watched {
        return;
    }
    for (line_no, snippet) in ctx.wildcards {
        diags.push(Diagnostic {
            rule: RuleId::WildcardDispatch,
            path: rel.to_string(),
            line: line_no,
            severity: Severity::Error,
            message: "wildcard arm in a protocol-enum match: a new variant \
                      must fail closed at compile time, not be silently \
                      swallowed"
                .to_string(),
            snippet,
        });
    }
}

// ---------------------------------------------------------------------
// Workspace walk + oracle coverage
// ---------------------------------------------------------------------

/// Scan errors (I/O and configuration).
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
    /// `lint.toml` is malformed.
    Allowlist(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::Allowlist(m) => write!(f, "lint.toml: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Directories never scanned (vendored stand-ins, build output, VCS,
/// and this crate's deliberately-bad fixtures).
fn skip_dir(rel: &str) -> bool {
    rel == "vendor"
        || rel == "target"
        || rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.ends_with("/target")
        || rel.contains("/target/")
        || rel.starts_with(".")
        || rel == "crates/lint/fixtures"
}

/// Collect every workspace `.rs` file (sorted, workspace-relative).
pub fn workspace_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(dir) = stack.pop() {
        let abs = root.join(&dir);
        let entries = std::fs::read_dir(&abs).map_err(|e| LintError::Io(abs.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(abs.clone(), e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel = if dir.as_os_str().is_empty() {
                name.clone()
            } else {
                format!("{}/{name}", dir.display())
            };
            let ty = entry
                .file_type()
                .map_err(|e| LintError::Io(abs.clone(), e))?;
            if ty.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(PathBuf::from(rel));
                }
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run every rule over the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let files = workspace_files(root)?;
    let mut diags = Vec::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for rel in &files {
        let abs = root.join(rel);
        let text = std::fs::read_to_string(&abs).map_err(|e| LintError::Io(abs.clone(), e))?;
        scan_file(rel, &text, &mut diags);
        sources.insert(rel.clone(), text);
    }
    oracle_coverage(&sources, &mut diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}

/// `GS-P04`: every `OracleViolation` variant must be referenced by some
/// root `tests/` file (the negative controls proving the oracle bites).
pub fn oracle_coverage(sources: &BTreeMap<String, String>, diags: &mut Vec<Diagnostic>) {
    let Some((def_path, def_text)) = sources
        .iter()
        .find(|(p, t)| p.starts_with("crates/") && t.contains("pub enum OracleViolation"))
    else {
        return; // nothing to check (fixture scans)
    };
    let (def_line, variants) = enum_variants(def_text, "OracleViolation");
    for (variant, _vline) in &variants {
        let covered = sources
            .iter()
            .any(|(p, t)| p.starts_with("tests/") && has_word(t, variant));
        if !covered {
            diags.push(Diagnostic {
                rule: RuleId::OracleCoverage,
                path: def_path.clone(),
                line: def_line,
                severity: Severity::Error,
                message: format!(
                    "OracleViolation::{variant} is referenced by no test under \
                     tests/ — the oracle arm is unproven; add a negative \
                     control that seeds the violation and asserts it fires"
                ),
                snippet: variant.clone(),
            });
        }
    }
}

/// Extract `(definition line, [(variant, line)])` of `pub enum <name>`.
pub fn enum_variants(text: &str, name: &str) -> (usize, Vec<(String, usize)>) {
    let mut stripper = strip::Stripper::new();
    let needle = format!("enum {name}");
    let mut def_line = 0usize;
    let mut depth_in = 0i32;
    let mut variants = Vec::new();
    let mut inside = false;
    for (idx, raw) in text.lines().enumerate() {
        let code = stripper.strip_line(raw);
        if !inside {
            if code.contains(&needle) && code.contains('{') {
                inside = true;
                def_line = idx + 1;
                depth_in = 1;
            }
            continue;
        }
        let trimmed = code.trim();
        if depth_in == 1 {
            let ident: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push((ident, idx + 1));
            }
        }
        depth_in += code.matches('{').count() as i32;
        depth_in -= code.matches('}').count() as i32;
        if depth_in <= 0 {
            break;
        }
    }
    (def_line, variants)
}

// ---------------------------------------------------------------------
// Applying the allowlist
// ---------------------------------------------------------------------

/// The outcome of filtering raw findings through `lint.toml`.
#[derive(Debug)]
pub struct Filtered {
    /// Findings no allowlist entry covers (these fail the run).
    pub kept: Vec<Diagnostic>,
    /// Findings suppressed by an entry.
    pub allowed: usize,
    /// Entries that matched nothing (stale — reported as warnings).
    pub unused: Vec<AllowEntry>,
}

/// Filter `diags` through the allowlist. An entry covers a finding when
/// the rule and path match, the optional `line` matches exactly, and the
/// optional `contains` substring occurs in the offending source line.
pub fn apply_allowlist(diags: Vec<Diagnostic>, allow: &Allowlist) -> Filtered {
    let mut used = vec![false; allow.entries.len()];
    let mut kept = Vec::new();
    let mut allowed = 0usize;
    for d in diags {
        let hit = allow.entries.iter().enumerate().find(|(_, e)| {
            e.rule == d.rule.name()
                && e.path == d.path
                && e.line.is_none_or(|l| l == d.line)
                && e.contains
                    .as_ref()
                    .is_none_or(|c| d.snippet.contains(c.as_str()))
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                allowed += 1;
            }
            None => kept.push(d),
        }
    }
    let unused = allow
        .entries
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Filtered {
        kept,
        allowed,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert!(classify("crates/gcs/src/endpoint.rs").protocol_src);
        assert!(!classify("crates/gcs/tests/scenarios.rs").protocol_src);
        assert!(classify("crates/gcs/tests/scenarios.rs").test_file);
        assert!(classify("crates/bench/src/lib.rs").bench);
        assert_eq!(classify("tests/reads.rs").crate_name, "root");
        assert!(classify("tests/reads.rs").test_file);
        assert!(classify("examples/bank.rs").test_file);
        assert!(!classify("src/lib.rs").test_file);
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("use FxHashMap;", "HashMap"));
        assert!(!has_word("let washing_machine = 3;", "machine"));
        assert!(!has_word("SimTime::ZERO", "Time"));
    }

    #[test]
    fn float_literals() {
        assert!(has_float_literal("let x = 1.5;"));
        assert!(!has_float_literal("for i in 0..10 {"));
        assert!(!has_float_literal("x.max(y)"));
    }

    #[test]
    fn wildcard_arms() {
        assert!(wildcard_arm("_ => {}").is_some());
        assert!(wildcard_arm("_ if x > 3 => {}").is_some());
        assert!(wildcard_arm("other => panic!(),").is_some());
        assert!(wildcard_arm("| _ => {}").is_some());
        assert!(wildcard_arm("Some(x) => x,").is_none());
        assert!(wildcard_arm("ScenarioEvent::Heal => {}").is_none());
        assert!(wildcard_arm("_x => {}").is_some());
    }

    #[test]
    fn enum_variant_extraction() {
        let src = "\
/// Doc.
pub enum OracleViolation {
    /// Doc.
    UnexpectedLoss { level: u8 },
    Divergence { digests: Vec<u64> },
    Read(ReadViolation),
}
";
        let (line, vars) = enum_variants(src, "OracleViolation");
        assert_eq!(line, 2);
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["UnexpectedLoss", "Divergence", "Read"]);
    }
}
