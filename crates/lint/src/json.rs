//! Minimal JSON rendering for `--json` mode (no external deps).
//!
//! The schema is stable and consumed by CI:
//!
//! ```json
//! {
//!   "tool": "groupsafe-lint",
//!   "files_scanned": 61,
//!   "errors": 0,
//!   "warnings": 1,
//!   "allowed": 38,
//!   "diagnostics": [
//!     {"rule": "GS-P02", "name": "panic-freedom", "severity": "error",
//!      "path": "crates/core/src/server.rs", "line": 120,
//!      "message": "...", "snippet": "..."}
//!   ],
//!   "unused_allowlist": [ {"rule": "...", "path": "...", "justification": "..."} ]
//! }
//! ```

use crate::{AllowEntry, Diagnostic};

/// Escape a string for a JSON double-quoted literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the whole report.
pub fn report(
    files_scanned: usize,
    diags: &[Diagnostic],
    allowed: usize,
    unused: &[AllowEntry],
) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == crate::Severity::Error)
        .count();
    let warnings = diags.len() - errors + unused.len();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"groupsafe-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str(&format!("  \"allowed\": {allowed},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \
             \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            d.rule.id(),
            d.rule.name(),
            d.severity,
            escape(&d.path),
            d.line,
            escape(&d.message),
            escape(&d.snippet),
        ));
    }
    if diags.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"unused_allowlist\": [");
    for (i, e) in unused.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"justification\": \"{}\"}}",
            escape(&e.rule),
            escape(&e.path),
            escape(&e.justification),
        ));
    }
    if unused.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RuleId, Severity};

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_shape() {
        let diags = vec![Diagnostic {
            rule: RuleId::PanicFreedom,
            path: "crates/core/src/server.rs".into(),
            line: 12,
            severity: Severity::Error,
            message: "says \"hi\"".into(),
            snippet: "x.unwrap()".into(),
        }];
        let out = report(3, &diags, 2, &[]);
        assert!(out.contains("\"files_scanned\": 3"));
        assert!(out.contains("\"errors\": 1"));
        assert!(out.contains("\"allowed\": 2"));
        assert!(out.contains("\"rule\": \"GS-P02\""));
        assert!(out.contains("says \\\"hi\\\""));
        // Empty case still valid shape.
        let empty = report(0, &[], 0, &[]);
        assert!(empty.contains("\"diagnostics\": []"));
    }
}
