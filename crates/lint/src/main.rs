//! `groupsafe-lint` CLI.
//!
//! ```text
//! cargo run -p groupsafe-lint                  # human-readable report
//! cargo run -p groupsafe-lint -- --json        # machine-readable (CI)
//! cargo run -p groupsafe-lint -- --fix-allowlist
//!     # append draft entries for current findings to lint.toml
//! cargo run -p groupsafe-lint -- --rules       # list rule ids
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` rule violations,
//! `2` usage / I/O / malformed `lint.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

use groupsafe_lint::{
    apply_allowlist, json, scan_workspace, workspace_files, AllowEntry, Allowlist, RuleId, Severity,
};

struct Options {
    root: PathBuf,
    json: bool,
    fix_allowlist: bool,
    no_allowlist: bool,
    list_rules: bool,
}

fn usage() -> &'static str {
    "usage: groupsafe-lint [--json] [--fix-allowlist] [--no-allowlist] \
     [--root DIR] [--allowlist FILE] [--rules]"
}

fn parse_args() -> Result<(Options, Option<PathBuf>), String> {
    let mut opts = Options {
        root: PathBuf::new(),
        json: false,
        fix_allowlist: false,
        no_allowlist: false,
        list_rules: false,
    };
    let mut allowlist_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--fix-allowlist" => opts.fix_allowlist = true,
            "--no-allowlist" => opts.no_allowlist = true,
            "--rules" => opts.list_rules = true,
            "--root" => {
                let v = args
                    .next()
                    .ok_or_else(|| format!("--root needs a value\n{}", usage()))?;
                root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = args
                    .next()
                    .ok_or_else(|| format!("--allowlist needs a value\n{}", usage()))?;
                allowlist_path = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    opts.root = match root {
        Some(r) => r,
        None => locate_root()?,
    };
    Ok((opts, allowlist_path))
}

/// Walk up from the current directory to the workspace root (the
/// directory holding a `Cargo.toml` with a `[workspace]` table). Under
/// `cargo run` the cwd is wherever the user invoked cargo, so this must
/// not assume it is the root.
fn locate_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("{}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory \
                        (pass --root)"
                .to_string());
        }
    }
}

fn main() -> ExitCode {
    let (opts, allowlist_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("groupsafe-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in RuleId::all() {
            println!("{}  {}", r.id(), r.name());
        }
        return ExitCode::SUCCESS;
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| opts.root.join("lint.toml"));
    let allow = if opts.no_allowlist {
        Allowlist::default()
    } else if allowlist_path.is_file() {
        let text = match std::fs::read_to_string(&allowlist_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("groupsafe-lint: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("groupsafe-lint: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let files = match workspace_files(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("groupsafe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match scan_workspace(&opts.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("groupsafe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let filtered = apply_allowlist(diags, &allow);

    if opts.fix_allowlist {
        let mut draft = Allowlist::default();
        for d in &filtered.kept {
            draft.entries.push(AllowEntry {
                rule: d.rule.name().to_string(),
                path: d.path.clone(),
                line: None,
                contains: if d.snippet.is_empty() {
                    None
                } else {
                    Some(d.snippet.clone())
                },
                justification: "TODO(justify): explain why this exception is sound, or fix it"
                    .to_string(),
            });
        }
        if draft.entries.is_empty() {
            eprintln!("groupsafe-lint: nothing to add — the tree is clean");
        } else {
            let mut text = if allowlist_path.is_file() {
                match std::fs::read_to_string(&allowlist_path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("groupsafe-lint: {}: {e}", allowlist_path.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                String::new()
            };
            if !text.is_empty() && !text.ends_with('\n') {
                text.push('\n');
            }
            text.push_str(&draft.render());
            if let Err(e) = std::fs::write(&allowlist_path, text) {
                eprintln!("groupsafe-lint: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "groupsafe-lint: appended {} draft entr{} to {} — fill in the \
                 justifications or fix the findings",
                draft.entries.len(),
                if draft.entries.len() == 1 { "y" } else { "ies" },
                allowlist_path.display()
            );
        }
    }

    let errors = filtered
        .kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();

    if opts.json {
        print!(
            "{}",
            json::report(
                files.len(),
                &filtered.kept,
                filtered.allowed,
                &filtered.unused
            )
        );
    } else {
        for d in &filtered.kept {
            println!("{d}");
        }
        for e in &filtered.unused {
            println!("lint.toml: [stale-allow] warning: entry matches nothing ({e}) — remove it");
        }
        println!(
            "groupsafe-lint: {} file(s), {} error(s), {} allowlisted, {} stale allowlist entr{}",
            files.len(),
            errors,
            filtered.allowed,
            filtered.unused.len(),
            if filtered.unused.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
