//! The `lint.toml` allowlist: documented exceptions to the lint rules.
//!
//! The file is TOML restricted to the shape the linter needs — an array
//! of `[[allow]]` tables with string/integer values — parsed by a small
//! hand-rolled reader (the build environment is offline; no external
//! TOML crate). Every entry must carry a `justification`: the policy
//! that exceptions are documented is enforced mechanically, not by
//! review convention.
//!
//! ```toml
//! [[allow]]
//! rule = "panic-freedom"
//! path = "crates/sim/src/lib.rs"
//! contains = "unhandled event payload"
//! justification = "downcast_payload! fall-through: a mis-routed event is a harness bug, failing loudly is the contract"
//! ```
//!
//! `line` pins an entry to an exact line (brittle across edits — prefer
//! `contains`); `contains` matches a substring of the offending source
//! line. An entry with neither suppresses the rule for the whole file.

use std::fmt;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name (`panic-freedom`, `direct-index`, ...).
    pub rule: String,
    /// Workspace-relative file the exception applies to.
    pub path: String,
    /// Exact 1-based line, if pinned.
    pub line: Option<usize>,
    /// Substring of the offending source line, if anchored.
    pub contains: Option<String>,
    /// Why the exception is sound. Mandatory and non-empty.
    pub justification: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.rule, self.path)?;
        if let Some(l) = self.line {
            write!(f, ":{l}")?;
        }
        if let Some(c) = &self.contains {
            write!(f, " (contains {c:?})")?;
        }
        Ok(())
    }
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse `lint.toml` text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<PartialEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(p) = current.take() {
                    entries.push(p.finish()?);
                }
                current = Some(PartialEntry::new(line_no));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "line {line_no}: unexpected table {line:?} (only [[allow]] is recognised)"
                ));
            }
            let Some(eq) = line.find('=') else {
                return Err(format!(
                    "line {line_no}: expected `key = value`, got {line:?}"
                ));
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            let Some(p) = current.as_mut() else {
                return Err(format!(
                    "line {line_no}: key {key:?} outside any [[allow] ] entry"
                ));
            };
            match key {
                "rule" => p.rule = Some(parse_string(value, line_no)?),
                "path" => p.path = Some(parse_string(value, line_no)?),
                "contains" => p.contains = Some(parse_string(value, line_no)?),
                "justification" => p.justification = Some(parse_string(value, line_no)?),
                "line" => {
                    p.line = Some(value.parse::<usize>().map_err(|_| {
                        format!("line {line_no}: `line` must be an integer, got {value:?}")
                    })?);
                }
                other => {
                    return Err(format!(
                        "line {line_no}: unknown key {other:?} (expected rule/path/line/contains/justification)"
                    ));
                }
            }
        }
        if let Some(p) = current.take() {
            entries.push(p.finish()?);
        }
        Ok(Allowlist { entries })
    }

    /// Render entries back to TOML (used by `--fix-allowlist`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str("[[allow]]\n");
            out.push_str(&format!("rule = {}\n", toml_string(&e.rule)));
            out.push_str(&format!("path = {}\n", toml_string(&e.path)));
            if let Some(l) = e.line {
                out.push_str(&format!("line = {l}\n"));
            }
            if let Some(c) = &e.contains {
                out.push_str(&format!("contains = {}\n", toml_string(c)));
            }
            out.push_str(&format!(
                "justification = {}\n\n",
                toml_string(&e.justification)
            ));
        }
        out
    }
}

struct PartialEntry {
    at_line: usize,
    rule: Option<String>,
    path: Option<String>,
    line: Option<usize>,
    contains: Option<String>,
    justification: Option<String>,
}

impl PartialEntry {
    fn new(at_line: usize) -> Self {
        PartialEntry {
            at_line,
            rule: None,
            path: None,
            line: None,
            contains: None,
            justification: None,
        }
    }

    fn finish(self) -> Result<AllowEntry, String> {
        let at = self.at_line;
        let rule = self
            .rule
            .ok_or_else(|| format!("entry at line {at}: missing `rule`"))?;
        if crate::RuleId::from_name(&rule).is_none() {
            return Err(format!(
                "entry at line {at}: unknown rule {rule:?} (see `groupsafe-lint --rules`)"
            ));
        }
        let path = self
            .path
            .ok_or_else(|| format!("entry at line {at}: missing `path`"))?;
        let justification = self.justification.ok_or_else(|| {
            format!("entry at line {at}: missing `justification` — every exception must say why it is sound")
        })?;
        if justification.trim().is_empty() {
            return Err(format!(
                "entry at line {at}: empty `justification` — every exception must say why it is sound"
            ));
        }
        Ok(AllowEntry {
            rule,
            path,
            line: self.line,
            contains: self.contains,
            justification,
        })
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted TOML string with basic escapes.
fn parse_string(value: &str, line_no: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
        return Err(format!(
            "line {line_no}: expected a double-quoted string, got {v:?}"
        ));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(format!(
                        "line {line_no}: unsupported escape \\{other} in string"
                    ));
                }
                None => return Err(format!("line {line_no}: dangling escape in string")),
            }
        } else if c == '"' {
            return Err(format!(
                "line {line_no}: unescaped quote inside string {v:?}"
            ));
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn toml_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let src = r#"
# workspace exceptions
[[allow]]
rule = "panic-freedom"
path = "crates/sim/src/lib.rs"
contains = "unhandled event payload"
justification = "fail-loudly contract of downcast_payload!"

[[allow]]
rule = "direct-index"
path = "crates/core/src/server.rs"
line = 42
justification = "index bounded by the loop above"
"#;
        let list = Allowlist::parse(src).expect("parses");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].rule, "panic-freedom");
        assert_eq!(
            list.entries[0].contains.as_deref(),
            Some("unhandled event payload")
        );
        assert_eq!(list.entries[1].line, Some(42));
        // Render → parse is identity.
        let again = Allowlist::parse(&list.render()).expect("re-parses");
        assert_eq!(again, list);
    }

    #[test]
    fn missing_justification_rejected() {
        let src = "[[allow]]\nrule = \"panic-freedom\"\npath = \"a.rs\"\n";
        let err = Allowlist::parse(src).expect_err("must fail");
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn empty_justification_rejected() {
        let src = "[[allow]]\nrule = \"panic-freedom\"\npath = \"a.rs\"\njustification = \"  \"\n";
        let err = Allowlist::parse(src).expect_err("must fail");
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_rule_rejected() {
        let src = "[[allow]]\nrule = \"no-such\"\npath = \"a.rs\"\njustification = \"x\"\n";
        let err = Allowlist::parse(src).expect_err("must fail");
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn comments_and_hash_in_strings() {
        let src = "[[allow]]\nrule = \"panic-freedom\" # trailing\npath = \"a#b.rs\"\njustification = \"uses # inside\"\n";
        let list = Allowlist::parse(src).expect("parses");
        assert_eq!(list.entries[0].path, "a#b.rs");
        assert_eq!(list.entries[0].justification, "uses # inside");
    }
}
