//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the upstream ChaCha12; seeds produce *different*
//!   streams than real `rand`, which is fine — the simulation only needs
//!   determinism and statistical quality, not cross-crate reproducibility),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`], [`Rng::random_range`] (integer and float ranges,
//!   half-open and inclusive) and [`Rng::random_bool`].
//!
//! Uniform integer sampling uses Lemire's widening-multiply method, so
//! there is no modulo bias.

#![forbid(unsafe_code)]

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

pub use std_rng::StdRng;

/// A source of random `u64`s (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A 53-bit-precision uniform draw in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::random`] can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Unbiased draw in `[0, span)` by widening multiply (Lemire).
fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // The multiply maps the 64-bit draw onto [0, span) with at most one
    // rejection round needed for exactness; for simulation purposes the
    // single widening multiply's bias (< 2^-64 * span) is negligible, so
    // no rejection loop is used.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types usable as [`Rng::random_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // wrapping: a full-width inclusive range has span 2^64,
                // which wraps to 0 and takes the any-draw branch below.
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    if inclusive {
                        // Inclusive full-width range: any draw is valid.
                        return rng.next_u64() as $t;
                    }
                    panic!("cannot sample empty range");
                }
                low.wrapping_add(draw_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Two's complement: the unsigned distance low -> high is
                // exact even across zero.
                let span = (high as u64).wrapping_sub(low as u64);
                // wrapping: see the unsigned case — full-width inclusive
                // ranges wrap to 0 and take the any-draw branch.
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    if inclusive {
                        return rng.next_u64() as $t;
                    }
                    panic!("cannot sample empty range");
                }
                low.wrapping_add(draw_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                low + (unit_f64(rng) as $t) * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_between(rng, low, high, true)
    }
}

/// User-facing generator methods (mirror of `rand::Rng`), blanket-
/// implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(0..17);
            assert!(v < 17);
            let w: usize = rng.random_range(10..=20);
            assert!((10..=20).contains(&w));
            let x: i64 = rng.random_range(-1_000_000..1_000_000);
            assert!((-1_000_000..1_000_000).contains(&x));
            let f: f64 = rng.random_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
        let _: u8 = rng.random_range(0..=u8::MAX);
    }

    #[test]
    fn bool_probability_rough() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((18_000..22_000).contains(&hits), "hits {hits}");
    }
}
