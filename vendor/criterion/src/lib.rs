//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the bench-definition API the workspace's benches use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`]) backed by
//! a deliberately simple harness: fixed warm-up, a handful of timed
//! batches, median-of-batches reporting. No statistics, plots or
//! baselines — enough to compare orders of magnitude and to keep
//! `cargo bench` working.

#![forbid(unsafe_code)]
// A bench harness is wall-clock by definition; the workspace-wide ban
// on `Instant` (GS-D02) targets protocol and simulation code only.
#![allow(clippy::disallowed_types)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The bench registry/driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower or raise the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Passed to the measured closure; its [`iter`](Bencher::iter) runs and
/// times the workload.
pub struct Bencher {
    batch_times: Vec<Duration>,
    iters_per_batch: u64,
    batches: usize,
}

/// How much setup output to batch per timing pass (API parity only; this
/// harness always uses one input per measured call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_batch = 1;
        for _ in 0..self.batches {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.batch_times.push(t0.elapsed());
        }
    }

    /// Time `f`, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for batches of at least
        // ~10 ms so Instant resolution noise stays negligible.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_batch = per_batch as u64;
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(f());
            }
            self.batch_times.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        batch_times: Vec::new(),
        iters_per_batch: 1,
        batches: sample_size,
    };
    f(&mut b);
    if b.batch_times.is_empty() {
        println!("{label:<50} (no measurement)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .batch_times
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / b.iters_per_batch as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{label:<50} median {:>12} /iter   [{} .. {}]",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Group benchmark functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
