//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, range/tuple/collection/option strategies, [`prop_oneof!`],
//! `any::<bool>()`, `prop_assert!`/`prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case index and seed,
//!   not a minimised input;
//! * **fixed deterministic seeding** — each test derives its RNG from the
//!   test name and case index, so failures are reproducible across runs;
//! * fewer strategy combinators (only what the workspace needs).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Strategy combinators and core types.
pub mod strategy {
    use super::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.random_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.random_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;

    /// A length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        low: usize,
        high_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                low: n,
                high_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                low: r.start,
                high_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                low: *r.start(),
                high_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.random_range(self.size.low..self.size.high_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::StdRng;

    /// Strategy for `Option<S::Value>`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for `bool`.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            use rand::Rng;
            rng.random_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the simulation-heavy
            // property tests inside a comfortable `cargo test` budget.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The input was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "assertion failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// FNV-1a over the test name: the per-test base seed.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Assert inside a proptest body; on failure the case errors (does not
/// panic directly, mirroring real proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} failed: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} ({:?} != {:?})",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn it_holds(x in 0u32..10, v in proptest::collection::vec(0u64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $name $($rest)*
        );
    };
    (
        @run ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let seed = $crate::seed_for(stringify!($name), case);
                    let mut rng =
                        <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
                    $(let $arg = ($strategy).generate(&mut rng);)+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case} (seed {seed:#x}): {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}
