//! Quickstart: build a 3-server group-safe replicated database, run a
//! small workload, and verify that the replicas converge with nothing
//! lost — the whole experiment is one fluent builder chain.
//!
//! Run with: `cargo run --release --example quickstart`

use groupsafe::core::{Load, SafetyLevel, System};
use groupsafe::sim::SimDuration;

fn main() {
    // 3 replica servers, 6 clients, a simulated LAN, ~15 tps for 10 s
    // after a 1 s warm-up; the oracle records everything clients are told.
    let report = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(10))
        .drain(SimDuration::from_secs(2))
        .seed(7)
        .build()
        .expect("a valid configuration")
        .execute();

    println!("group-safe replication, 3 servers, ~15 tps for 10 s:\n");
    print!("{report}");

    assert!(
        report.commits > 50,
        "the system should have committed plenty"
    );
    assert_eq!(report.lost, 0, "group-safe must not lose acknowledged work");
    assert_eq!(report.distinct_states, 1, "replicas must agree bit-for-bit");
    println!("\nall good: every acknowledged transaction is on every replica.");
}
