//! Quickstart: build a 3-server group-safe replicated database, run a
//! small workload, and verify that the replicas converge with nothing
//! lost.
//!
//! Run with: `cargo run --release --example quickstart`

use groupsafe::core::{SafetyLevel, StopClient, System, Technique};
use groupsafe::sim::{SimDuration, SimTime};
use groupsafe::workload::{system_config, table4_generator, PaperParams, RunConfig};

fn main() {
    // Table 4 parameters, shrunk to a 3-server group for a quick demo.
    let params = PaperParams {
        n_servers: 3,
        clients_per_server: 2,
        ..PaperParams::default()
    };
    let cfg = RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupSafe),
        load_tps: 15.0,
        closed_loop: false,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: params.clone(),
        warmup: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(10),
        drain: SimDuration::from_secs(2),
        seed: 7,
    };

    // Build the system: 3 replica servers, 6 clients, a simulated LAN, an
    // oracle recording everything clients are told.
    let mut system = System::build(system_config(&cfg), |_| table4_generator(&params));
    system.start();

    // Run: warm-up + measurement, then stop the clients and drain.
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);

    // Inspect the outcome.
    let (mean_ms, p95_ms, commits) = system.response_stats();
    let aborts = system.oracle.borrow().aborts;
    let lost = system.lost_transactions();
    let digests = system.convergence();

    println!("group-safe replication, 3 servers, ~15 tps for 10 s:");
    println!("  committed transactions : {commits}");
    println!("  mean response          : {mean_ms:.1} ms (p95 {p95_ms:.1} ms)");
    println!("  certification aborts   : {aborts} (clients resubmitted them)");
    println!("  lost transactions      : {}", lost.len());
    println!("  distinct replica states: {} (1 = converged)", digests.len());

    assert!(commits > 50, "the system should have committed plenty");
    assert!(lost.is_empty(), "group-safe must not lose acknowledged work");
    assert_eq!(digests.len(), 1, "replicas must agree bit-for-bit");
    println!("\nall good: every acknowledged transaction is on every replica.");
}
