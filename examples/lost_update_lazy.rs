//! §7 in miniature: run the same contended workload under lazy (1-safe)
//! replication and under the group-safe database state machine, and count
//! lost updates. Lazy replication silently destroys concurrent updates
//! even though no failure ever happens; certification aborts them.
//!
//! Run with: `cargo run --release --example lost_update_lazy`

use groupsafe::core::{Load, SafetyLevel, System, WorkloadSpec};
use groupsafe::sim::SimDuration;

fn measure(level: SafetyLevel) -> (usize, usize, f64) {
    let r = System::builder()
        .servers(5)
        .safety(level)
        .load(Load::closed_tps(40.0))
        // The historical harness condition: failover only after 5 s.
        .client_timeout(SimDuration::from_secs(5))
        .lazy_prop_interval(SimDuration::from_millis(200))
        .workload(WorkloadSpec {
            // A hot workload: contention is the whole point here.
            hot_access_fraction: 0.5,
            hot_set_fraction: 0.01,
            ..WorkloadSpec::table4()
        })
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(3))
        .seed(31)
        .build()
        .expect("a valid configuration")
        .execute();
    (r.lost_updates, r.commits, r.abort_rate)
}

fn main() {
    println!("contended updates, 5 replicas, 40 tps, no failures:\n");
    let (lazy_lu, lazy_n, _) = measure(SafetyLevel::OneSafe);
    let (gs_lu, gs_n, gs_abort) = measure(SafetyLevel::GroupSafe);
    println!("  lazy (1-safe):  {lazy_lu} lost updates among {lazy_n} acknowledged commits");
    println!(
        "  group-safe:     {gs_lu} lost updates among {gs_n} commits ({:.1}% aborted+retried instead)",
        gs_abort * 100.0
    );
    assert!(
        lazy_lu > 0,
        "lazy must exhibit lost updates under contention"
    );
    assert_eq!(gs_lu, 0, "certification must prevent every lost update");
    println!("\n§7's point: lazy replication violates ACID with no failure at all;");
    println!("the group-safe state machine converts those races into clean aborts.");
}
