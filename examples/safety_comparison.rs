//! A miniature Fig. 9: response time of the three techniques at one
//! moderate load point, printed side by side with their guarantees.
//!
//! Run with: `cargo run --release --example safety_comparison`

use groupsafe::core::{SafetyLevel, Technique};
use groupsafe::workload::{run, RunConfig};
use groupsafe::sim::SimDuration;

fn main() {
    println!("three techniques, Table 4 configuration, 26 tps, 20 s:\n");
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>7}  guarantee when the client is told \"committed\"",
        "technique", "mean ms", "p95 ms", "abort%", "lost"
    );
    let mut means = Vec::new();
    for (tech, guarantee) in [
        (
            Technique::Dsm(SafetyLevel::GroupSafe),
            "delivered on all available replicas (durability by the group)",
        ),
        (
            Technique::Lazy,
            "logged on the delegate only (a single crash can lose it)",
        ),
        (
            Technique::Dsm(SafetyLevel::GroupOneSafe),
            "delivered on all + logged on the delegate",
        ),
    ] {
        let cfg = RunConfig {
            duration: SimDuration::from_secs(20),
            ..RunConfig::paper(tech, 26.0, 5)
        };
        let r = run(&cfg);
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>7.1}% {:>7}  {}",
            r.technique,
            r.mean_ms,
            r.p95_ms,
            r.abort_rate * 100.0,
            r.lost,
            guarantee
        );
        means.push(r.mean_ms);
    }
    println!();
    assert!(means[0] < means[2], "group-safe beats group-1-safe");
    println!("group-safe answers fastest because every disk write left the");
    println!("transaction boundary — yet unlike lazy replication it still");
    println!("guarantees the group holds the transaction.");
}
