//! A miniature Fig. 9: response time of the three techniques at one
//! moderate load point, printed side by side with their guarantees.
//!
//! Run with: `cargo run --release --example safety_comparison`

use groupsafe::core::{Load, Report, SafetyLevel, System};
use groupsafe::sim::SimDuration;

fn measure(level: SafetyLevel) -> Report {
    System::builder()
        .safety(level)
        .load(Load::closed_tps(26.0))
        // The historical harness condition: failover only after 5 s.
        .client_timeout(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(5))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(3))
        .seed(5)
        .build()
        .expect("a valid configuration")
        .execute()
}

fn main() {
    println!("three techniques, Table 4 configuration, 26 tps, 20 s:\n");
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>7}  guarantee when the client is told \"committed\"",
        "technique", "mean ms", "p95 ms", "abort%", "lost"
    );
    let mut means = Vec::new();
    for (level, guarantee) in [
        (
            SafetyLevel::GroupSafe,
            "delivered on all available replicas (durability by the group)",
        ),
        (
            SafetyLevel::OneSafe,
            "logged on the delegate only (a single crash can lose it)",
        ),
        (
            SafetyLevel::GroupOneSafe,
            "delivered on all + logged on the delegate",
        ),
    ] {
        let r = measure(level);
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>7.1}% {:>7}  {}",
            r.technique,
            r.mean_ms,
            r.p95_ms,
            r.abort_rate * 100.0,
            r.lost,
            guarantee
        );
        means.push(r.mean_ms);
    }
    println!();
    assert!(means[0] < means[2], "group-safe beats group-1-safe");
    println!("group-safe answers fastest because every disk write left the");
    println!("transaction boundary — yet unlike lazy replication it still");
    println!("guarantees the group holds the transaction.");
}
