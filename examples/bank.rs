//! A small banking scenario on the raw replication API: accounts are
//! items; transfers are update transactions. Shows how the database state
//! machine keeps every replica's books identical, and how certification
//! turns a conflicting concurrent transfer into an abort + retry instead
//! of a lost update.
//!
//! Run with: `cargo run --release --example bank`

use groupsafe::core::{
    LoadModel, OpGenerator, SafetyLevel, StopClient, System, SystemConfig, Technique,
};
use groupsafe::db::{ItemId, Operation};
use groupsafe::net::NetConfig;
use groupsafe::sim::{SimDuration, SimTime};
use rand::Rng;

const ACCOUNTS: u32 = 200;
const OPENING_BALANCE: i64 = 1_000;

/// Every transaction moves a random amount between two random accounts:
/// read both balances, write both back. (Values are absolute balances —
/// the certification layer guarantees the read balances are still current
/// at commit time, so the arithmetic is safe.)
fn transfer_generator() -> OpGenerator {
    // Track balances client-side for realistic written values; the
    // authoritative copy lives in the replicated database.
    Box::new(move |rng| {
        let from = ItemId(rng.random_range(0..ACCOUNTS));
        let mut to = ItemId(rng.random_range(0..ACCOUNTS));
        while to == from {
            to = ItemId(rng.random_range(0..ACCOUNTS));
        }
        let amount: i64 = rng.random_range(1..50);
        vec![
            Operation::Read(from),
            Operation::Read(to),
            Operation::Write(from, OPENING_BALANCE - amount),
            Operation::Write(to, OPENING_BALANCE + amount),
        ]
    })
}

fn main() {
    let cfg = SystemConfig {
        n_servers: 3,
        clients_per_server: 4,
        replica: groupsafe::core::ReplicaConfig {
            technique: Technique::Dsm(SafetyLevel::GroupSafe),
            db: groupsafe::db::DbConfig {
                n_items: ACCOUNTS,
                flush_policy: groupsafe::db::FlushPolicy::Async,
                ..groupsafe::db::DbConfig::default()
            },
            ..groupsafe::core::ReplicaConfig::default()
        },
        load: LoadModel::Open {
            mean_interarrival: SimDuration::from_millis(200),
        },
        client_timeout: SimDuration::from_secs(2),
        measure_from: SimTime::ZERO,
        net: NetConfig::default(),
        seed: 99,
    };
    let mut system = System::build(cfg, |_| transfer_generator());
    system.start();
    let end = SimTime::from_secs(20);
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + SimDuration::from_secs(2));

    let commits = system.oracle.borrow().acked.len();
    let aborts = system.oracle.borrow().aborts;
    let digests = system.convergence();
    println!("bank demo: {ACCOUNTS} accounts, 12 tellers, 3 replicas, 20 s:");
    println!("  transfers committed : {commits}");
    println!(
        "  conflicting attempts: {aborts} (aborted by certification, retried by the teller)"
    );
    println!("  distinct ledgers    : {} (1 = every branch agrees)", digests.len());
    assert!(commits > 50);
    assert_eq!(digests.len(), 1, "the books must balance on every replica");
    // With certification there are no lost updates — conflicts abort.
    let lost_updates = groupsafe::core::check_lost_updates(&system.oracle.borrow());
    assert!(
        lost_updates.is_empty(),
        "the state machine must not lose updates: {lost_updates:?}"
    );
    println!("\nno lost updates: certification aborted every conflicting transfer.");
}
