//! A small banking scenario on a custom workload: accounts are items;
//! transfers are update transactions. Shows how the database state
//! machine keeps every replica's books identical, and how certification
//! turns a conflicting concurrent transfer into an abort + retry instead
//! of a lost update — with the whole system wired by the fluent builder
//! and a custom operation generator.
//!
//! Run with: `cargo run --release --example bank`

use groupsafe::core::{Load, OpGenerator, SafetyLevel, System};
use groupsafe::db::{DbConfig, FlushPolicy, ItemId, Operation};
use groupsafe::sim::SimDuration;
use rand::Rng;

const ACCOUNTS: u32 = 200;
const OPENING_BALANCE: i64 = 1_000;

/// Every transaction moves a random amount between two random accounts:
/// read both balances, write both back. (Values are absolute balances —
/// the certification layer guarantees the read balances are still current
/// at commit time, so the arithmetic is safe.)
fn transfer_generator() -> OpGenerator {
    Box::new(move |rng| {
        let from = ItemId(rng.random_range(0..ACCOUNTS));
        let mut to = ItemId(rng.random_range(0..ACCOUNTS));
        while to == from {
            to = ItemId(rng.random_range(0..ACCOUNTS));
        }
        let amount: i64 = rng.random_range(1..50);
        vec![
            Operation::Read(from),
            Operation::Read(to),
            Operation::Write(from, OPENING_BALANCE - amount),
            Operation::Write(to, OPENING_BALANCE + amount),
        ]
        .into()
    })
}

fn main() {
    let report = System::builder()
        .servers(3)
        .clients_per_server(4)
        .safety(SafetyLevel::GroupSafe)
        .db(DbConfig {
            n_items: ACCOUNTS,
            flush_policy: FlushPolicy::Async,
            ..DbConfig::default()
        })
        .generator(|_| transfer_generator())
        .load(Load::open_interarrival(SimDuration::from_millis(200)))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(2))
        .seed(99)
        .build()
        .expect("a valid configuration")
        .execute();

    println!("bank demo: {ACCOUNTS} accounts, 12 tellers, 3 replicas, 20 s:");
    println!("  transfers committed : {}", report.acked);
    println!(
        "  conflicting attempts: {} (aborted by certification, retried by the teller)",
        report.aborts
    );
    println!(
        "  distinct ledgers    : {} (1 = every branch agrees)",
        report.distinct_states
    );
    assert!(report.acked > 50);
    assert_eq!(
        report.distinct_states, 1,
        "the books must balance on every replica"
    );
    // With certification there are no lost updates — conflicts abort.
    assert_eq!(
        report.lost_updates, 0,
        "the state machine must not lose updates"
    );
    println!("\nno lost updates: certification aborted every conflicting transfer.");
}
