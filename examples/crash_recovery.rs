//! The paper's Fig. 5 / Fig. 7 story, told on the replicated database:
//! a group-safe system loses a freshly acknowledged transaction when the
//! whole group fails, while the 2-safe system (end-to-end atomic
//! broadcast) replays and keeps it — and a minority crash hurts neither.
//!
//! Run with: `cargo run --release --example crash_recovery`

use groupsafe::core::{SafetyLevel, Technique};
use groupsafe::sim::SimDuration;
use groupsafe::workload::{run_crash_scenario, CrashScenario, RecoveryPlan};

fn show(label: &str, technique: Technique, crash: Vec<u32>, recover: bool) -> usize {
    let sc = CrashScenario {
        recovery: if recover {
            RecoveryPlan::Recover {
                downtime: SimDuration::from_millis(400),
            }
        } else {
            RecoveryPlan::StayDown
        },
        ..CrashScenario::small(technique, crash, 4242)
    };
    let out = run_crash_scenario(&sc);
    println!(
        "  {label:<42} acked {:>4}  lost {:>2}  progress after crash: {}",
        out.acked,
        out.lost,
        if out.acked_after_crash > 0 { "yes" } else { "no" }
    );
    out.lost
}

fn main() {
    println!("crash/recovery on 5 replicas (Table 4 workload):\n");
    let a = show(
        "group-safe, 2 of 5 crash (stay down)",
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![1, 3],
        false,
    );
    let b = show(
        "group-safe, all 5 crash, recover + restart",
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![0, 1, 2, 3, 4],
        true,
    );
    let c = show(
        "2-safe (end-to-end), all 5 crash, recover",
        Technique::Dsm(SafetyLevel::TwoSafe),
        vec![0, 1, 2, 3, 4],
        true,
    );
    println!();
    assert_eq!(a, 0, "minority crashes never lose under group-safety");
    assert!(b > 0, "total failure exposes group-safety's async window");
    assert_eq!(c, 0, "end-to-end atomic broadcast replays everything");
    println!("as in the paper: group-safety trades the all-crash case for");
    println!("disk-free response times; end-to-end atomic broadcast closes");
    println!("that last window at the cost of a log force per delivery.");
}
