//! The paper's Fig. 5 / Fig. 7 story, told on the replicated database:
//! a group-safe system loses a freshly acknowledged transaction when the
//! whole group fails, while the 2-safe system (end-to-end atomic
//! broadcast) replays and keeps it — and a minority crash hurts neither.
//!
//! The minority-crash case uses the declarative [`FaultPlan`] on the
//! builder; the total-failure cases need operator-style group restarts
//! and use the workload crate's [`CrashScenario`] machinery (itself
//! builder-backed).
//!
//! Run with: `cargo run --release --example crash_recovery`

use groupsafe::core::{FaultPlan, Load, SafetyLevel, System, Technique};
use groupsafe::net::NodeId;
use groupsafe::sim::{SimDuration, SimTime};
use groupsafe::workload::{run_crash_scenario, CrashScenario, RecoveryPlan};

/// Run the scenario over a few seeds: loss on total failure is about a
/// *window* (acknowledged commits whose records were not yet flushed when
/// everyone died), so any single instant may or may not catch it.
fn show_scenario(label: &str, technique: Technique, crash: Vec<u32>, recover: bool) -> usize {
    let mut acked = 0;
    let mut lost = 0;
    let mut progressed = false;
    for seed in [4242, 4243, 4244, 4245] {
        let sc = CrashScenario {
            recovery: if recover {
                RecoveryPlan::Recover {
                    downtime: SimDuration::from_millis(400),
                }
            } else {
                RecoveryPlan::StayDown
            },
            ..CrashScenario::small(technique, crash.clone(), seed)
        };
        let out = run_crash_scenario(&sc);
        acked += out.acked;
        lost += out.lost;
        progressed |= out.acked_after_crash > 0;
    }
    println!(
        "  {label:<42} acked {acked:>4}  lost {lost:>2}  progress after crash: {}",
        if progressed { "yes" } else { "no" }
    );
    lost
}

fn main() {
    println!("crash/recovery on 5 replicas (Table 4 workload):\n");

    // Minority crash, declaratively: 2 of 5 replicas die mid-run and stay
    // down; group-safety promises zero loss and continued progress.
    let crash_at = SimTime::from_millis(3_330);
    let minority = System::builder()
        .servers(5)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(20.0))
        .measure(SimDuration::from_secs(7))
        .drain(SimDuration::from_secs(3))
        .faults(FaultPlan::crash(NodeId(1), crash_at).also_crash(NodeId(3), crash_at))
        .seed(4242)
        .build()
        .expect("a valid configuration")
        .execute();
    println!(
        "  {:<42} acked {:>4}  lost {:>2}  client failovers: {}",
        "group-safe, 2 of 5 crash (stay down)", minority.acked, minority.lost, minority.timeouts
    );

    let b = show_scenario(
        "group-safe, all 5 crash, recover + restart",
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![0, 1, 2, 3, 4],
        true,
    );
    let c = show_scenario(
        "2-safe (end-to-end), all 5 crash, recover",
        Technique::Dsm(SafetyLevel::TwoSafe),
        vec![0, 1, 2, 3, 4],
        true,
    );
    println!();
    assert_eq!(
        minority.lost, 0,
        "minority crashes never lose under group-safety"
    );
    assert!(b > 0, "total failure exposes group-safety's async window");
    assert_eq!(c, 0, "end-to-end atomic broadcast replays everything");
    println!("as in the paper: group-safety trades the all-crash case for");
    println!("disk-free response times; end-to-end atomic broadcast closes");
    println!("that last window at the cost of a log force per delivery.");
}
