//! # groupsafe — group-safe database replication
//!
//! Facade crate for the reproduction of *"Beyond 1-Safety and 2-Safety for
//! Replicated Databases: Group-Safety"* (Wiesmann & Schiper, EDBT 2004).
//!
//! Re-exports the whole workspace under stable module paths:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel,
//! * [`net`] — simulated LAN,
//! * [`gcs`] — group communication (atomic broadcast, end-to-end atomic
//!   broadcast, views, recovery),
//! * [`db`] — local database engine (buffer pool, 2PL, WAL, recovery),
//! * [`core`] — the paper's contribution: safety criteria, the database
//!   state machine replication technique, the lazy baseline, verification,
//! * [`workload`] — Table 4 workloads, clients and the experiment runner.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub use groupsafe_core as core;
pub use groupsafe_db as db;
pub use groupsafe_gcs as gcs;
pub use groupsafe_net as net;
pub use groupsafe_sim as sim;
pub use groupsafe_workload as workload;
